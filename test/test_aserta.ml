module Glitch = Aserta.Glitch
module Analysis = Aserta.Analysis
module Measured = Aserta.Measured
module Circuit = Ser_netlist.Circuit
module Gate = Ser_netlist.Gate
module L = Ser_cell.Library
module A = Ser_sta.Assignment

(* ---------------- Eq. 1 ---------------- *)

let test_eq1_regimes () =
  Alcotest.(check (float 0.)) "killed" 0. (Glitch.propagate ~delay:10. ~width:5.);
  Alcotest.(check (float 0.)) "boundary w=d" 0. (Glitch.propagate ~delay:10. ~width:9.999);
  Alcotest.(check (float 1e-9)) "attenuating" 10. (Glitch.propagate ~delay:10. ~width:15.);
  Alcotest.(check (float 1e-9)) "boundary w=2d" 20. (Glitch.propagate ~delay:10. ~width:20.);
  Alcotest.(check (float 1e-9)) "pass-through" 50. (Glitch.propagate ~delay:10. ~width:50.);
  Alcotest.(check (float 0.)) "negative clamps" 0. (Glitch.propagate ~delay:10. ~width:(-3.))

let eq1_monotone_prop =
  QCheck.Test.make ~name:"Eq-1 monotone in width, antitone in delay" ~count:300
    QCheck.(triple (float_range 0.1 100.) (float_range 0. 200.) (float_range 0. 50.))
    (fun (d, w, dw) ->
      Glitch.propagate ~delay:d ~width:(w +. dw) >= Glitch.propagate ~delay:d ~width:w
      && Glitch.propagate ~delay:(d +. 1.) ~width:w <= Glitch.propagate ~delay:d ~width:w)

let eq1_contraction_prop =
  QCheck.Test.make ~name:"Eq-1 never amplifies" ~count:300
    QCheck.(pair (float_range 0.1 100.) (float_range 0. 300.))
    (fun (d, w) -> Glitch.propagate ~delay:d ~width:w <= w +. 1e-9)

let test_amplitude_model () =
  let module Amp = Glitch.Amplitude in
  (* full-swing wide glitches reduce to Eq. 1 *)
  let g = Amp.full_swing ~vdd:1. 60. in
  let out = Amp.propagate ~delay:10. ~vdd:1. g in
  Alcotest.(check (float 1e-9)) "wide width = Eq1" (Glitch.propagate ~delay:10. ~width:60.)
    out.Amp.width;
  Alcotest.(check (float 1e-9)) "wide keeps full swing" 1. out.Amp.amplitude;
  (* marginal glitches lose amplitude *)
  let m = Amp.propagate ~delay:10. ~vdd:1. (Amp.full_swing ~vdd:1. 15.) in
  Alcotest.(check bool) "marginal loses amplitude" true (m.Amp.amplitude < 1.);
  (* sub-threshold amplitude means zero effective width *)
  let dead = { Amp.amplitude = 0.4; width = 50. } in
  Alcotest.(check (float 0.)) "dead glitch" 0. (Amp.effective_width ~vdd:1. dead);
  (* a degraded glitch dies faster in a chain than Eq. 1 predicts *)
  let delays = Array.make 6 10. in
  let eq1 = Glitch.chain ~delays ~width:19. in
  let amp =
    Amp.effective_width ~vdd:1.
      (Amp.chain ~delays ~vdd:1. (Amp.full_swing ~vdd:1. 19.))
  in
  Alcotest.(check bool) "amplitude model at most Eq1" true (amp <= eq1 +. 1e-9);
  (* killed glitches stay killed *)
  let z = Amp.propagate ~delay:10. ~vdd:1. { Amp.amplitude = 0.3; width = 30. } in
  Alcotest.(check (float 0.)) "no resurrection" 0. z.Amp.width

let amplitude_never_amplifies_prop =
  QCheck.Test.make ~name:"amplitude model never exceeds Eq-1 width" ~count:300
    QCheck.(pair (float_range 1. 50.) (float_range 0. 150.))
    (fun (d, w) ->
      let module Amp = Glitch.Amplitude in
      let out = Amp.propagate ~delay:d ~vdd:1. (Amp.full_swing ~vdd:1. w) in
      Amp.effective_width ~vdd:1. out
      <= Glitch.propagate ~delay:d ~width:w +. 1e-9
      && out.Amp.amplitude >= 0.
      && out.Amp.amplitude <= 1. +. 1e-9)

let test_chain () =
  Alcotest.(check (float 1e-9)) "chain"
    (Glitch.propagate ~delay:20. ~width:(Glitch.propagate ~delay:10. ~width:30.))
    (Glitch.chain ~delays:[| 10.; 20. |] ~width:30.);
  Alcotest.(check bool) "survives" true (Glitch.survives ~delay:10. ~width:10.);
  Alcotest.(check bool) "dies" false (Glitch.survives ~delay:10. ~width:9.)

(* ---------------- analysis ---------------- *)

let quick_config =
  { Analysis.default_config with Analysis.vectors = 2000; seed = 4 }

let c17_setup () =
  let c = Ser_circuits.Iscas.c17 () in
  let lib = L.create () in
  let asg = A.uniform lib c in
  (c, lib, asg)

let test_sample_widths () =
  let ws = Analysis.sample_widths quick_config in
  Alcotest.(check int) "ten samples" 10 (Array.length ws);
  Alcotest.(check (float 1e-9)) "top is max_sample_width"
    quick_config.Analysis.max_sample_width
    ws.(9);
  for i = 0 to 8 do
    Alcotest.(check bool) "ascending" true (ws.(i) < ws.(i + 1))
  done

let test_run_basic () =
  let c, lib, asg = c17_setup () in
  let r = Analysis.run ~config:quick_config lib asg in
  Alcotest.(check bool) "positive total" true (r.Analysis.total > 0.);
  (* inputs contribute nothing *)
  Array.iter
    (fun id ->
      Alcotest.(check (float 0.)) "PI zero" 0. r.Analysis.unreliability.(id))
    c.Circuit.inputs;
  (* total is the sum of per-gate terms *)
  let s = Array.fold_left ( +. ) 0. r.Analysis.unreliability in
  Alcotest.(check bool) "sum consistency" true
    (Float.abs (s -. r.Analysis.total) /. r.Analysis.total < 1e-9)

let test_po_gate_width_identity () =
  (* W_jj = w_j for a primary-output gate (step ii + iv of the paper) *)
  let c, lib, asg = c17_setup () in
  let r = Analysis.run ~config:quick_config lib asg in
  Array.iteri
    (fun pos id ->
      Alcotest.(check (float 1e-9)) "W_jj = w_j" r.Analysis.gen_width.(id)
        r.Analysis.expected_width.(id).(pos))
    c.Circuit.outputs

let test_expected_width_bounded () =
  let _, lib, asg = c17_setup () in
  let r = Analysis.run ~config:quick_config lib asg in
  Array.iter
    (fun row ->
      Array.iter
        (fun w ->
          Alcotest.(check bool) "non-negative" true (w >= 0.);
          Alcotest.(check bool) "bounded by top sample" true
            (w <= quick_config.Analysis.max_sample_width +. 1e-6))
        row)
    r.Analysis.expected_width

let test_pi_weight_normalisation () =
  (* sum_s pi_isj * P_sj = P_ij -- the property Eq. 2 is built to satisfy *)
  let c = Ser_circuits.Iscas.load "c432" in
  let lib = L.create () in
  let asg = A.uniform lib c in
  let r = Analysis.run ~config:quick_config lib asg in
  let p = r.Analysis.masking.Analysis.path_probs.Ser_logicsim.Probs.p in
  let checked = ref 0 in
  Array.iter
    (fun (nd : Circuit.node) ->
      if
        nd.Circuit.kind <> Gate.Input
        && (not (Circuit.is_output c nd.Circuit.id))
        && !checked < 40
      then begin
        let succs =
          Array.to_list nd.Circuit.fanout |> List.sort_uniq compare
        in
        Array.iteri
          (fun j pij ->
            if pij > 0.01 then begin
              let lhs =
                List.fold_left
                  (fun acc s ->
                    acc
                    +. Analysis.successor_weight r ~gate:nd.Circuit.id ~succ:s ~po:j
                       *. p.(s).(j))
                  0. succs
              in
              incr checked;
              Alcotest.(check (float 1e-9))
                (Printf.sprintf "gate %d po %d" nd.Circuit.id j)
                pij lhs
            end)
          p.(nd.Circuit.id)
      end)
    c.Circuit.nodes;
  Alcotest.(check bool) "checked some" true (!checked > 10)

let test_lemma1_wide_glitch () =
  (* Lemma 1: a very wide generated glitch reaches output j with
     expected width ww * P_ij. Force wide glitches with a huge charge
     and a modest top sample. *)
  let c, lib, asg = c17_setup () in
  let config =
    { quick_config with Analysis.charge = 5_000.; max_sample_width = 120. }
  in
  let r = Analysis.run ~config lib asg in
  let p = r.Analysis.masking.Analysis.path_probs.Ser_logicsim.Probs.p in
  let ws = Analysis.sample_widths config in
  let ww = ws.(Array.length ws - 1) in
  Array.iteri
    (fun id row ->
      if not (Circuit.is_input c id) then begin
        Alcotest.(check bool)
          (Printf.sprintf "gate %d glitch is wide (%.0f >= %.0f)" id
             r.Analysis.gen_width.(id) ww)
          true
          (r.Analysis.gen_width.(id) >= ww);
        Array.iteri
          (fun j wij ->
            let expect =
              if Circuit.output_index c id = Some j then
                r.Analysis.gen_width.(id)
              else ww *. p.(id).(j)
            in
            if expect > 1. then
              Alcotest.(check bool)
                (Printf.sprintf "gate %d po %d: %.1f vs %.1f" id j wij expect)
                true
                (Float.abs (wij -. expect) /. expect < 0.15))
          row
      end)
    r.Analysis.expected_width

let test_masking_reuse () =
  (* run_electrical with precomputed masking = run from scratch *)
  let _, lib, asg = c17_setup () in
  let c = A.circuit asg in
  let masking = Analysis.compute_masking quick_config c in
  let a = Analysis.run_electrical quick_config lib asg masking in
  let b = Analysis.run ~config:quick_config lib asg in
  Alcotest.(check (float 1e-9)) "same total" a.Analysis.total b.Analysis.total

let test_charge_monotone () =
  let _, lib, asg = c17_setup () in
  let c = A.circuit asg in
  let masking = Analysis.compute_masking quick_config c in
  let u q =
    (Analysis.run_electrical { quick_config with Analysis.charge = q } lib asg
       masking).Analysis.total
  in
  Alcotest.(check bool) "more charge more unreliability" true
    (u 4. < u 16. && u 16. < u 64.)

let test_naive_split_differs () =
  let c = Ser_circuits.Iscas.load "c432" in
  let lib = L.create () in
  let asg = A.uniform lib c in
  let masking = Analysis.compute_masking quick_config c in
  let exact = Analysis.run_electrical quick_config lib asg masking in
  let naive =
    Analysis.run_electrical { quick_config with Analysis.split = Analysis.Naive }
      lib asg masking
  in
  Alcotest.(check bool) "splits differ" true
    (Float.abs (exact.Analysis.total -. naive.Analysis.total)
     /. exact.Analysis.total
    > 1e-3)

(* ---------------- measured mode ---------------- *)

let test_measured_po_strike () =
  (* striking a PO gate yields exactly its generated width at that PO *)
  let c, lib, asg = c17_setup () in
  let timing = Ser_sta.Timing.analyze lib asg in
  let po = c.Circuit.outputs.(0) in
  let vec = [| true; true; true; true; true |] in
  let r = Measured.strike_widths lib asg ~timing ~input_values:vec ~charge:16. ~gate:po in
  let w_at_po = List.assoc 0 r.Measured.po_widths in
  Alcotest.(check bool) "positive width at own latch" true (w_at_po > 0.)

let test_measured_logical_masking () =
  (* gate 6 ("11" = NAND(3,6)) is masked under 1,0,1,1,0 (checked by
     the transient simulator too, in test_spice) *)
  let c, lib, asg = c17_setup () in
  let timing = Ser_sta.Timing.analyze lib asg in
  let vec = [| true; false; true; true; false |] in
  let r = Measured.strike_widths lib asg ~timing ~input_values:vec ~charge:16. ~gate:6 in
  List.iter
    (fun (_, w) -> Alcotest.(check (float 0.)) "masked" 0. w)
    r.Measured.po_widths;
  ignore c

let test_measured_unreliability_tracks_analysis () =
  let c = Ser_circuits.Iscas.load "c432" in
  let lib = L.create () in
  let asg = A.uniform lib c in
  let analysis = Analysis.run ~config:quick_config lib asg in
  let measured = Measured.unreliability ~vectors:60 lib asg in
  let ratio = measured /. analysis.Analysis.total in
  Alcotest.(check bool)
    (Printf.sprintf "same scale (ratio %.2f)" ratio)
    true
    (ratio > 0.5 && ratio < 2.0)

let test_measured_per_gate_sums () =
  let _, lib, asg = c17_setup () in
  let per = Measured.per_gate_unreliability ~vectors:10 lib asg in
  let total = Measured.unreliability ~vectors:10 lib asg in
  Alcotest.(check (float 1e-6)) "sum = total" total (Array.fold_left ( +. ) 0. per)

let test_analytic_masking_backend () =
  let _, lib, asg = c17_setup () in
  let cfg = { quick_config with Analysis.masking_backend = Analysis.Analytic_masking } in
  let a = Analysis.run ~config:cfg lib asg in
  let b = Analysis.run ~config:quick_config lib asg in
  Alcotest.(check bool) "positive" true (a.Analysis.total > 0.);
  let ratio = a.Analysis.total /. b.Analysis.total in
  Alcotest.(check bool)
    (Printf.sprintf "same scale as MC (ratio %.2f)" ratio)
    true
    (ratio > 0.7 && ratio < 1.4)

let test_biased_pi_config () =
  (* biasing inputs toward the NAND controlling value (0) raises the
     sensitization of the c17 internals and changes U *)
  let _, lib, asg = c17_setup () in
  let cfg_biased =
    { quick_config with Analysis.pi_probs = Some (Array.make 5 0.9) }
  in
  let a = Analysis.run ~config:cfg_biased lib asg in
  let b = Analysis.run ~config:quick_config lib asg in
  Alcotest.(check bool) "bias changes the answer" true
    (Float.abs (a.Analysis.total -. b.Analysis.total) /. b.Analysis.total > 0.02);
  (* static probabilities reflect the bias *)
  Alcotest.(check (float 1e-9)) "p at input" 0.9
    a.Analysis.masking.Analysis.probs.(0)

(* ---------------- ser rate ---------------- *)

let test_latch_probability () =
  Alcotest.(check (float 1e-9)) "proportional" 0.25
    (Aserta.Ser_rate.latch_probability ~clock_period:200. 50.);
  Alcotest.(check (float 1e-9)) "saturates" 1.
    (Aserta.Ser_rate.latch_probability ~clock_period:100. 250.);
  Alcotest.(check (float 1e-9)) "negative clamps" 0.
    (Aserta.Ser_rate.latch_probability ~clock_period:100. (-5.));
  try
    ignore (Aserta.Ser_rate.latch_probability ~clock_period:0. 5.);
    Alcotest.fail "bad clock accepted"
  with Invalid_argument _ -> ()

let test_ser_rate_basic () =
  let _, lib, asg = c17_setup () in
  let analysis = Analysis.run ~config:quick_config lib asg in
  let rate = Aserta.Ser_rate.run lib asg analysis in
  Alcotest.(check bool) "positive total" true (rate.Aserta.Ser_rate.total > 0.);
  Alcotest.(check (float 1e-9)) "per-gate sums"
    rate.Aserta.Ser_rate.total
    (Ser_util.Floatx.sum rate.Aserta.Ser_rate.per_gate);
  (* inputs contribute nothing *)
  Alcotest.(check (float 0.)) "PI zero" 0. rate.Aserta.Ser_rate.per_gate.(0)

let test_ser_rate_monotone_in_slope () =
  (* a harsher spectrum (bigger Qs = more high-charge strikes) raises the rate *)
  let _, lib, asg = c17_setup () in
  let analysis = Analysis.run ~config:quick_config lib asg in
  let rate qs =
    (Aserta.Ser_rate.run
       ~spectrum:{ Aserta.Ser_rate.default_spectrum with Aserta.Ser_rate.q_slope = qs }
       lib asg analysis)
      .Aserta.Ser_rate.total
  in
  Alcotest.(check bool) "monotone in q_slope" true (rate 3. < rate 6. && rate 6. < rate 12.)

let test_ser_rate_monotone_in_clock () =
  (* a slower clock means a wider latching window fraction... actually a
     LONGER period lowers the capture probability of a fixed width *)
  let _, lib, asg = c17_setup () in
  let analysis = Analysis.run ~config:quick_config lib asg in
  let rate t =
    (Aserta.Ser_rate.run ~clock_period:t lib asg analysis).Aserta.Ser_rate.total
  in
  Alcotest.(check bool) "faster clock more captures" true (rate 200. > rate 800.)

let test_ser_rate_validation () =
  let _, lib, asg = c17_setup () in
  let analysis = Analysis.run ~config:quick_config lib asg in
  let bad spectrum =
    try
      ignore (Aserta.Ser_rate.run ~spectrum lib asg analysis);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad range" true
    (bad { Aserta.Ser_rate.default_spectrum with Aserta.Ser_rate.q_min = 10.; q_max = 5. });
  Alcotest.(check bool) "bad points" true
    (bad { Aserta.Ser_rate.default_spectrum with Aserta.Ser_rate.n_points = 1 })

let test_expected_width_at () =
  let c, lib, asg = c17_setup () in
  let r = Analysis.run ~config:quick_config lib asg in
  (* identity at a PO gate's own position *)
  let po = c.Circuit.outputs.(0) in
  Alcotest.(check (float 1e-9)) "PO identity" 123.
    (Analysis.expected_width_at r ~gate:po ~po:0 ~width:123.);
  (* consistency with the stored W_ij at the analysed generated width *)
  Array.iteri
    (fun id row ->
      if not (Circuit.is_input c id) then
        Array.iteri
          (fun j wij ->
            Alcotest.(check (float 1e-6))
              (Printf.sprintf "gate %d po %d" id j)
              wij
              (Analysis.expected_width_at r ~gate:id ~po:j
                 ~width:r.Analysis.gen_width.(id)))
          row)
    r.Analysis.expected_width;
  (* inputs give zero *)
  Alcotest.(check (float 0.)) "PI zero" 0.
    (Analysis.expected_width_at r ~gate:0 ~po:0 ~width:50.)

let test_measured_rejects_pi () =
  let _, lib, asg = c17_setup () in
  let timing = Ser_sta.Timing.analyze lib asg in
  try
    ignore
      (Measured.strike_widths lib asg ~timing
         ~input_values:(Array.make 5 false) ~charge:16. ~gate:0);
    Alcotest.fail "PI strike accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "aserta"
    [
      ( "eq1",
        [
          Alcotest.test_case "regimes" `Quick test_eq1_regimes;
          QCheck_alcotest.to_alcotest eq1_monotone_prop;
          QCheck_alcotest.to_alcotest eq1_contraction_prop;
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "amplitude model" `Quick test_amplitude_model;
          QCheck_alcotest.to_alcotest amplitude_never_amplifies_prop;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "sample widths" `Quick test_sample_widths;
          Alcotest.test_case "run basics" `Quick test_run_basic;
          Alcotest.test_case "PO width identity" `Quick test_po_gate_width_identity;
          Alcotest.test_case "widths bounded" `Quick test_expected_width_bounded;
          Alcotest.test_case "Eq-2 normalisation" `Slow test_pi_weight_normalisation;
          Alcotest.test_case "Lemma 1 (wide glitch)" `Quick test_lemma1_wide_glitch;
          Alcotest.test_case "masking reuse" `Quick test_masking_reuse;
          Alcotest.test_case "charge monotone" `Quick test_charge_monotone;
          Alcotest.test_case "naive split differs" `Slow test_naive_split_differs;
          Alcotest.test_case "analytic masking backend" `Quick test_analytic_masking_backend;
          Alcotest.test_case "biased inputs" `Quick test_biased_pi_config;
        ] );
      ( "ser_rate",
        [
          Alcotest.test_case "latch probability" `Quick test_latch_probability;
          Alcotest.test_case "basics" `Quick test_ser_rate_basic;
          Alcotest.test_case "spectrum slope" `Quick test_ser_rate_monotone_in_slope;
          Alcotest.test_case "clock period" `Quick test_ser_rate_monotone_in_clock;
          Alcotest.test_case "validation" `Quick test_ser_rate_validation;
          Alcotest.test_case "expected_width_at" `Quick test_expected_width_at;
        ] );
      ( "measured",
        [
          Alcotest.test_case "PO strike" `Quick test_measured_po_strike;
          Alcotest.test_case "logical masking" `Quick test_measured_logical_masking;
          Alcotest.test_case "tracks analysis" `Slow test_measured_unreliability_tracks_analysis;
          Alcotest.test_case "per-gate sums" `Quick test_measured_per_gate_sums;
          Alcotest.test_case "rejects PI" `Quick test_measured_rejects_pi;
        ] );
    ]
