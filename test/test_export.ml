module Circuit = Ser_netlist.Circuit
module J = Ser_util.Json

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

let count_substring ~sub s =
  let m = String.length sub in
  let rec loop i acc =
    if i + m > String.length s then acc
    else if String.sub s i m = sub then loop (i + 1) (acc + 1)
    else loop (i + 1) acc
  in
  if m = 0 then 0 else loop 0 0

(* ---------------- json ---------------- *)

let test_json_scalars () =
  Alcotest.(check string) "null" "null" (J.to_string J.Null);
  Alcotest.(check string) "bool" "true" (J.to_string (J.Bool true));
  Alcotest.(check string) "int-like" "42" (J.to_string (J.Num 42.));
  Alcotest.(check string) "float" "1.5" (J.to_string (J.Num 1.5));
  Alcotest.(check string) "nan becomes null" "null" (J.to_string (J.Num Float.nan));
  Alcotest.(check string) "string" "\"hi\"" (J.to_string (J.Str "hi"))

let test_json_escaping () =
  Alcotest.(check string) "quotes" "\"a\\\"b\"" (J.to_string (J.Str "a\"b"));
  Alcotest.(check string) "newline" "\"a\\nb\"" (J.to_string (J.Str "a\nb"));
  Alcotest.(check string) "backslash" "\"a\\\\b\"" (J.to_string (J.Str "a\\b"))

let test_json_compound () =
  let v = J.Obj [ ("xs", J.List [ J.int 1; J.int 2 ]); ("e", J.Obj []) ] in
  let compact = J.to_string ~indent:false v in
  Alcotest.(check string) "compact" "{\"xs\": [1,2],\"e\": {}}" compact;
  let pretty = J.to_string v in
  Alcotest.(check bool) "pretty has newlines" true (contains ~sub:"\n" pretty);
  Alcotest.(check (list (pair string (of_pp (fun _ _ -> ())))))
    "field_opt none" [] (J.field_opt "x" None)

let test_analysis_json () =
  let c = Ser_circuits.Iscas.c17 () in
  let lib = Ser_cell.Library.create () in
  let asg = Ser_sta.Assignment.uniform lib c in
  let cfg = { Aserta.Analysis.default_config with Aserta.Analysis.vectors = 500 } in
  let a = Aserta.Analysis.run ~config:cfg lib asg in
  let json = Ser_repro.Report.analysis_to_json asg a in
  let s = J.to_string json in
  Alcotest.(check bool) "has total" true (contains ~sub:"total_unreliability" s);
  Alcotest.(check int) "six gates exported" 6 (count_substring ~sub:"\"kind\"" s);
  (* top filter *)
  let s2 = J.to_string (Ser_repro.Report.analysis_to_json ~top:2 asg a) in
  Alcotest.(check int) "top 2" 2 (count_substring ~sub:"\"kind\"" s2)

(* ---------------- dot ---------------- *)

let test_dot_structure () =
  let c = Ser_circuits.Iscas.c17 () in
  let dot = Ser_netlist.Dot_export.to_dot c in
  Alcotest.(check bool) "digraph" true (contains ~sub:"digraph \"c17\"" dot);
  Alcotest.(check int) "11 nodes" 11 (count_substring ~sub:"style=filled" dot);
  (* 6 gates x 2 fanins = 12 edges *)
  Alcotest.(check int) "12 edges" 12 (count_substring ~sub:" -> " dot);
  Alcotest.(check int) "5 input diamonds" 5 (count_substring ~sub:"diamond" dot);
  Alcotest.(check int) "2 output doublecircles" 2
    (count_substring ~sub:"doublecircle" dot)

let test_dot_annotation () =
  let c = Ser_circuits.Iscas.c17 () in
  let annotation =
    {
      Ser_netlist.Dot_export.label = (fun id -> if id = 5 then Some "hot" else None);
      heat = (fun id -> if id = 5 then 1. else 0.);
    }
  in
  let dot = Ser_netlist.Dot_export.to_dot ~annotation c in
  Alcotest.(check bool) "label present" true (contains ~sub:"hot" dot);
  Alcotest.(check bool) "full heat red" true (contains ~sub:"#ff0000" dot)

(* ---------------- spice deck ---------------- *)

let test_deck_structure () =
  let c = Ser_circuits.Iscas.c17 () in
  let lib = Ser_cell.Library.create () in
  let asg = Ser_sta.Assignment.uniform lib c in
  let deck =
    Ser_spice.Deck_export.strike_deck c
      ~assignment:(Ser_sta.Assignment.get asg)
      ~input_values:[| true; false; true; true; false |]
      ~strike:6
  in
  Alcotest.(check bool) ".tran present" true (contains ~sub:".tran" deck);
  Alcotest.(check bool) ".end present" true (contains ~sub:".end" deck);
  Alcotest.(check bool) "strike source" true (contains ~sub:"Istrike" deck);
  Alcotest.(check bool) "models" true (contains ~sub:".model mn_vt200 NMOS" deck);
  (* gate 6 ("11") reaches both outputs *)
  Alcotest.(check int) "two measures" 2 (count_substring ~sub:".measure" deck);
  Alcotest.(check bool) "subckt defined once" true
    (count_substring ~sub:".subckt nand2_x100" deck = 1)

let test_deck_polarity () =
  (* strike on a low node injects into it: current source 0 -> node *)
  let c = Ser_circuits.Iscas.c17 () in
  let lib = Ser_cell.Library.create () in
  let asg = Ser_sta.Assignment.uniform lib c in
  (* gate 5 ("10" = NAND(1,3)) with inputs all-ones is 0 *)
  let deck =
    Ser_spice.Deck_export.strike_deck c
      ~assignment:(Ser_sta.Assignment.get asg)
      ~input_values:[| true; true; true; true; true |]
      ~strike:5
  in
  Alcotest.(check bool) "injects into low node" true
    (contains ~sub:"Istrike 0 n_10" deck)

let test_cell_subckt () =
  let p = Ser_device.Cell_params.nominal Ser_netlist.Gate.Xor 2 in
  let s = Ser_spice.Deck_export.cell_subckt p in
  (* 4-NAND expansion: 4 nands x 4 transistors = 16 devices *)
  Alcotest.(check int) "16 devices" 16
    (count_substring ~sub:"\nM" ("\n" ^ s) - 0);
  Alcotest.(check bool) "subckt ends" true (contains ~sub:".ends" s)

(* ---------------- liberty ---------------- *)

let test_liberty () =
  let lib = Ser_cell.Library.create () in
  let cells =
    [
      Ser_device.Cell_params.nominal Ser_netlist.Gate.Nand 2;
      Ser_device.Cell_params.v ~size:4. Ser_netlist.Gate.Nand 2;
    ]
  in
  let text = Ser_cell.Liberty_export.library lib ~cells in
  Alcotest.(check bool) "library group" true (contains ~sub:"library (ser70)" text);
  Alcotest.(check int) "two cells" 2 (count_substring ~sub:"  cell (" text);
  Alcotest.(check bool) "function" true (contains ~sub:"!(A0 & A1)" text);
  Alcotest.(check bool) "nldm tables" true (contains ~sub:"cell_rise" text);
  Alcotest.(check bool) "glitch extension" true (contains ~sub:"ser_glitch_width" text);
  Alcotest.(check int) "balanced braces" (count_substring ~sub:"{" text)
    (count_substring ~sub:"}" text)

let () =
  Alcotest.run "exports"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "compound" `Quick test_json_compound;
          Alcotest.test_case "analysis report" `Quick test_analysis_json;
        ] );
      ( "dot",
        [
          Alcotest.test_case "structure" `Quick test_dot_structure;
          Alcotest.test_case "annotation" `Quick test_dot_annotation;
        ] );
      ( "spice deck",
        [
          Alcotest.test_case "structure" `Quick test_deck_structure;
          Alcotest.test_case "strike polarity" `Quick test_deck_polarity;
          Alcotest.test_case "cell subckt" `Quick test_cell_subckt;
        ] );
      ("liberty", [ Alcotest.test_case "document" `Quick test_liberty ]);
    ]
