(* Cross-module integration tests: full analysis/optimization flows,
   agreement between the three estimation paths (probabilistic ASERTA,
   vector-replay ASERTA, transient golden), and smoke tests of the
   experiment drivers. *)

module Circuit = Ser_netlist.Circuit
module L = Ser_cell.Library
module A = Ser_sta.Assignment
module Analysis = Aserta.Analysis

let quick = { Analysis.default_config with Analysis.vectors = 2000; seed = 77 }

let test_bench_roundtrip_preserves_unreliability () =
  (* serialising a circuit to .bench and back must not change ASERTA's
     answer (same topology, same names, same order) *)
  let c = Ser_circuits.Iscas.load "c432" in
  let text = Ser_netlist.Bench_format.to_string c in
  let c' = Result.get_ok (Ser_netlist.Bench_format.parse_string text) in
  let lib = L.create () in
  let u circuit =
    (Analysis.run ~config:quick lib (A.uniform lib circuit)).Analysis.total
  in
  Alcotest.(check (float 1e-6)) "same unreliability" (u c) (u c')

let test_three_estimates_agree_on_ranking () =
  (* per-gate unreliability from the probabilistic analysis and from
     the 100-vector replay must rank gates consistently *)
  let c = Ser_circuits.Iscas.load "c432" in
  let lib = L.create () in
  let asg = A.uniform lib c in
  let analysis = Analysis.run ~config:quick lib asg in
  let replay = Aserta.Measured.per_gate_unreliability ~vectors:100 lib asg in
  let ids =
    Array.to_list (Array.init (Circuit.node_count c) Fun.id)
    |> List.filter (fun id -> not (Circuit.is_input c id))
  in
  let xs = Array.of_list (List.map (fun id -> analysis.Analysis.unreliability.(id)) ids) in
  let ys = Array.of_list (List.map (fun id -> replay.(id)) ids) in
  let r = Ser_linalg.Stats.spearman xs ys in
  Alcotest.(check bool) (Printf.sprintf "rank correlation %.2f" r) true (r > 0.6)

let test_golden_transient_agrees_on_c17 () =
  (* transient golden vs Eq-1 replay, gate by gate, same vector *)
  let c = Ser_circuits.Iscas.c17 () in
  let lib = L.create () in
  let asg = A.uniform lib c in
  let timing = Ser_sta.Timing.analyze lib asg in
  let vec = [| true; true; false; true; false |] in
  for gate = 5 to 10 do
    let golden =
      Ser_spice.Circuit_sim.strike_po_widths c ~assignment:(A.get asg)
        ~input_values:vec ~strike:gate
    in
    let replay =
      Aserta.Measured.strike_widths lib asg ~timing ~input_values:vec
        ~charge:16. ~gate
    in
    List.iter
      (fun (pos, w_replay) ->
        let w_golden = List.assoc pos golden in
        (* agreement on maskedness; widths within a factor of ~2.5 when
           both see a glitch *)
        if w_replay > 15. || w_golden > 15. then begin
          Alcotest.(check bool)
            (Printf.sprintf "gate %d PO %d both see glitch (%.1f vs %.1f)"
               gate pos w_replay w_golden)
            true
            (w_replay > 5. && w_golden > 5.);
          let ratio = w_golden /. Float.max 1e-9 w_replay in
          Alcotest.(check bool)
            (Printf.sprintf "gate %d PO %d widths comparable (%.2f)" gate pos ratio)
            true
            (ratio > 0.3 && ratio < 3.5)
        end)
      replay.Aserta.Measured.po_widths
  done

let test_fig3_correlation () =
  (* the Fig 3 headline: strong ASERTA-vs-golden correlation *)
  let r = Ser_repro.Fig3.run ~vectors:4 ~seed:3 () in
  Alcotest.(check bool)
    (Printf.sprintf "pearson %.3f > 0.8" r.Ser_repro.Fig3.pearson)
    true
    (r.Ser_repro.Fig3.pearson > 0.8);
  Alcotest.(check bool) "points present" true
    (List.length r.Ser_repro.Fig3.points > 20)

let test_fig1_fig2_shapes () =
  let fig1 = Ser_repro.Fig12.fig1 ~points:3 () in
  let fig2 = Ser_repro.Fig12.fig2 ~points:3 () in
  let series label t = List.find (fun s -> s.Ser_repro.Fig12.variable = label) t.Ser_repro.Fig12.series in
  let widths s = List.map (fun p -> p.Ser_repro.Fig12.width) s.Ser_repro.Fig12.points in
  let decreasing = function
    | a :: b :: _ when a > b -> true
    | _ -> false
  in
  let increasing = function
    | a :: b :: _ when a < b -> true
    | _ -> false
  in
  (* Fig 1: bigger size -> narrower generated glitch; longer channel -> wider *)
  Alcotest.(check bool) "fig1 size decreasing" true (decreasing (widths (series "size" fig1)));
  Alcotest.(check bool) "fig1 length increasing" true (increasing (widths (series "length" fig1)));
  Alcotest.(check bool) "fig1 vth increasing" true (increasing (widths (series "vth" fig1)));
  (* Fig 2: bigger size -> less attenuation -> wider propagated glitch *)
  Alcotest.(check bool) "fig2 size increasing" true (increasing (widths (series "size" fig2)));
  Alcotest.(check bool) "fig2 length decreasing" true (decreasing (widths (series "length" fig2)));
  (* render shape *)
  let text = Ser_repro.Fig12.render fig1 in
  Alcotest.(check bool) "render non-empty" true (String.length text > 100)

let test_end_to_end_optimize_improves_replay () =
  (* the optimization found by SERTOPT must also look better to the
     independent vector-replay estimate *)
  let c = Ser_circuits.Iscas.load "c432" in
  let lib =
    L.create ~axes:(L.restrict ~vdds:[ 0.8; 1.0 ] ~vths:[ 0.2; 0.3 ] L.default_axes) ()
  in
  let baseline = Sertopt.Optimizer.size_for_speed lib c in
  let config =
    {
      Sertopt.Optimizer.default_config with
      Sertopt.Optimizer.aserta = quick;
      max_evals = 40;
      greedy_passes = 1;
      greedy_gates = 120;
    }
  in
  let r = Sertopt.Optimizer.optimize ~config lib baseline in
  let u_base = Aserta.Measured.unreliability ~vectors:40 lib r.Sertopt.Optimizer.baseline in
  let u_opt = Aserta.Measured.unreliability ~vectors:40 lib r.Sertopt.Optimizer.optimized in
  Alcotest.(check bool)
    (Printf.sprintf "replay also improves (%.0f -> %.0f)" u_base u_opt)
    true
    (u_opt < u_base)

let test_cli_circuit_loading_path () =
  (* generate -> write file -> parse file: the CLI round trip *)
  let c = Ser_circuits.Iscas.load "c880" in
  let path = Filename.temp_file "ser_test" ".bench" in
  Ser_netlist.Bench_format.write_file path c;
  (match Ser_netlist.Bench_format.parse_file path with
  | Ok c' ->
    Alcotest.(check int) "gates preserved" (Circuit.gate_count c)
      (Circuit.gate_count c')
  | Error e -> Alcotest.fail (Ser_util.Diag.to_string e));
  Sys.remove path

let test_table1_driver () =
  let t =
    Ser_repro.Table1.run ~with_measured:true ~only:[ "c432" ] ()
  in
  (match t.Ser_repro.Table1.rows with
  | [ row ] ->
    Alcotest.(check string) "circuit" "c432" row.Ser_repro.Table1.circuit;
    Alcotest.(check bool) "some reduction" true
      (row.Ser_repro.Table1.reduction_aserta > 0.05);
    Alcotest.(check bool) "delay ratio sane" true
      (row.Ser_repro.Table1.delay_ratio < 1.15);
    Alcotest.(check bool) "replay column present" true
      (row.Ser_repro.Table1.reduction_measured <> None);
    Alcotest.(check bool) "baseline U positive" true
      (row.Ser_repro.Table1.baseline_u > 0.)
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows));
  let text = Ser_repro.Table1.render t in
  Alcotest.(check bool) "render mentions circuit" true
    (String.length text > 100)

let test_knob_summary () =
  let c = Ser_circuits.Iscas.load "c432" in
  let lib =
    L.create ~axes:(L.restrict ~vdds:[ 0.8; 1.0 ] ~vths:[ 0.2; 0.3 ] L.default_axes) ()
  in
  let baseline = Sertopt.Optimizer.size_for_speed lib c in
  let config =
    {
      Sertopt.Optimizer.default_config with
      Sertopt.Optimizer.aserta = quick;
      max_evals = 20;
      greedy_passes = 1;
      greedy_gates = 40;
    }
  in
  let r = Sertopt.Optimizer.optimize ~config lib baseline in
  let s = Sertopt.Optimizer.knob_summary r in
  Alcotest.(check bool) "something changed" true
    (s.Sertopt.Optimizer.changed_gates > 0);
  Alcotest.(check bool) "menu respected" true
    (List.for_all (fun v -> v = 0.8 || v = 1.0) s.Sertopt.Optimizer.vdds_used);
  let text =
    Format.asprintf "%a" Sertopt.Optimizer.pp_knob_summary s
  in
  Alcotest.(check bool) "pretty-prints" true (String.length text > 40)

let test_ablation_smoke () =
  let s = Ser_repro.Ablation.sample_count ~counts:[ 4; 10 ] () in
  Alcotest.(check bool) "sample_count report" true (String.length s > 50);
  let v = Ser_repro.Ablation.vector_convergence ~counts:[ 100; 1000 ] () in
  Alcotest.(check bool) "vector report" true (String.length v > 50);
  let q = Ser_repro.Ablation.charge_sweep ~charges:[ 8.; 16. ] () in
  Alcotest.(check bool) "charge report" true (String.length q > 50)

let () =
  Alcotest.run "integration"
    [
      ( "flows",
        [
          Alcotest.test_case "bench round-trip U" `Slow
            test_bench_roundtrip_preserves_unreliability;
          Alcotest.test_case "estimates rank-agree" `Slow
            test_three_estimates_agree_on_ranking;
          Alcotest.test_case "golden vs replay on c17" `Quick
            test_golden_transient_agrees_on_c17;
          Alcotest.test_case "optimize improves replay" `Slow
            test_end_to_end_optimize_improves_replay;
          Alcotest.test_case "file round trip" `Quick test_cli_circuit_loading_path;
        ] );
      ( "paper figures",
        [
          Alcotest.test_case "fig3 correlation" `Slow test_fig3_correlation;
          Alcotest.test_case "fig1/fig2 shapes" `Slow test_fig1_fig2_shapes;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "ablation smoke" `Slow test_ablation_smoke;
          Alcotest.test_case "table1 driver" `Slow test_table1_driver;
          Alcotest.test_case "knob summary" `Slow test_knob_summary;
        ] );
    ]
