module Bitsim = Ser_logicsim.Bitsim
module Probs = Ser_logicsim.Probs
module Circuit = Ser_netlist.Circuit
module Gate = Ser_netlist.Gate

let popcount_prop =
  QCheck.Test.make ~name:"popcount matches naive bit count" ~count:300
    QCheck.int (fun x ->
      let x = x land max_int in
      let naive = ref 0 in
      for b = 0 to Bitsim.bits_per_word - 1 do
        if (x lsr b) land 1 = 1 then incr naive
      done;
      Bitsim.popcount (x land Bitsim.mask_of Bitsim.bits_per_word) = !naive)

let test_mask_of () =
  Alcotest.(check int) "zero" 0 (Bitsim.mask_of 0);
  Alcotest.(check int) "three" 7 (Bitsim.mask_of 3);
  Alcotest.(check int) "count of full mask" Bitsim.bits_per_word
    (Bitsim.popcount (Bitsim.mask_of Bitsim.bits_per_word));
  try
    ignore (Bitsim.mask_of 99);
    Alcotest.fail "oversized mask accepted"
  with Invalid_argument _ -> ()

let eval_matches_bool_prop =
  QCheck.Test.make ~name:"bit-parallel eval = per-vector eval on c17" ~count:100
    QCheck.small_nat
    (fun seed ->
      let c = Ser_circuits.Iscas.c17 () in
      let rng = Ser_rng.Rng.create seed in
      let batch = Bitsim.random_batch rng c ~n_patterns:62 in
      (* check 8 random bit positions *)
      let ok = ref true in
      for _ = 1 to 8 do
        let bit = Ser_rng.Rng.int rng 62 in
        let vec =
          Array.map
            (fun id -> (batch.Bitsim.values.(id) lsr bit) land 1 = 1)
            c.Circuit.inputs
        in
        let values = Bitsim.eval_vector c vec in
        Array.iteri
          (fun id v ->
            let bitv = (batch.Bitsim.values.(id) lsr bit) land 1 = 1 in
            if v <> bitv then ok := false)
          values
      done;
      !ok)

let test_ones_count () =
  let c = Ser_circuits.Iscas.c17 () in
  (* constant-0 inputs: NAND outputs are all 1 *)
  let batch = Bitsim.eval c ~pi_words:(Array.make 5 0) ~n_patterns:10 in
  Alcotest.(check int) "input zeros" 0 (Bitsim.ones_count batch 0);
  Alcotest.(check int) "nand of zeros is one" 10 (Bitsim.ones_count batch 5)

(* ----------------- signal probabilities ----------------- *)

let test_signal_probs_tree () =
  (* a fanout-free tree: analytic probabilities are exact *)
  let b = Circuit.Builder.create () in
  let i1 = Circuit.Builder.add_input b "i1" in
  let i2 = Circuit.Builder.add_input b "i2" in
  let i3 = Circuit.Builder.add_input b "i3" in
  let a = Circuit.Builder.add_gate b Gate.And [ i1; i2 ] in
  let o = Circuit.Builder.add_gate b Gate.Or [ a; i3 ] in
  let n = Circuit.Builder.add_gate b Gate.Not [ o ] in
  Circuit.Builder.set_output b n;
  let c = Circuit.Builder.build_exn b in
  let p = Probs.signal_probabilities c in
  Alcotest.(check (float 1e-9)) "and" 0.25 p.(a);
  Alcotest.(check (float 1e-9)) "or" 0.625 p.(o);
  Alcotest.(check (float 1e-9)) "not" 0.375 p.(n)

let test_signal_probs_xor () =
  let b = Circuit.Builder.create () in
  let i1 = Circuit.Builder.add_input b "i1" in
  let i2 = Circuit.Builder.add_input b "i2" in
  let x = Circuit.Builder.add_gate b Gate.Xor [ i1; i2 ] in
  let xn = Circuit.Builder.add_gate b Gate.Xnor [ i1; i2 ] in
  Circuit.Builder.set_output b x;
  Circuit.Builder.set_output b xn;
  let c = Circuit.Builder.build_exn b in
  let p = Probs.signal_probabilities c in
  Alcotest.(check (float 1e-9)) "xor" 0.5 p.(x);
  Alcotest.(check (float 1e-9)) "xnor" 0.5 p.(xn)

let test_signal_probs_pi_prob () =
  let b = Circuit.Builder.create () in
  let i1 = Circuit.Builder.add_input b "i1" in
  let i2 = Circuit.Builder.add_input b "i2" in
  let a = Circuit.Builder.add_gate b Gate.And [ i1; i2 ] in
  Circuit.Builder.set_output b a;
  let c = Circuit.Builder.build_exn b in
  let p = Probs.signal_probabilities ~pi_prob:0.9 c in
  Alcotest.(check (float 1e-9)) "and of 0.9" 0.81 p.(a)

let test_mc_close_to_analytic () =
  let c = Ser_circuits.Iscas.c17 () in
  let analytic = Probs.signal_probabilities c in
  let mc =
    Probs.signal_probabilities_mc ~rng:(Ser_rng.Rng.create 5) ~vectors:20_000 c
  in
  (* c17 has reconvergent fan-out, so the independence-assumption
     analytic values carry a small bias against the exact MC values *)
  Array.iteri
    (fun id pa ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d: %.3f vs %.3f" id pa mc.(id))
        true
        (Float.abs (pa -. mc.(id)) < 0.06))
    analytic

(* ----------------- sensitization ----------------- *)

let test_side_sensitization () =
  let b = Circuit.Builder.create () in
  let i1 = Circuit.Builder.add_input b "i1" in
  let i2 = Circuit.Builder.add_input b "i2" in
  let i3 = Circuit.Builder.add_input b "i3" in
  let a = Circuit.Builder.add_gate b Gate.And [ i1; i2; i3 ] in
  let o = Circuit.Builder.add_gate b Gate.Nor [ a; i3 ] in
  let x = Circuit.Builder.add_gate b Gate.Xor [ a; o ] in
  Circuit.Builder.set_output b x;
  let c = Circuit.Builder.build_exn b in
  let probs = Probs.signal_probabilities c in
  (* AND3: sides must be 1: 0.5 * 0.5 *)
  Alcotest.(check (float 1e-9)) "and sides" 0.25
    (Probs.side_sensitization c ~probs ~gate:a ~pin:0);
  (* NOR: side must be 0 *)
  Alcotest.(check (float 1e-9)) "nor side" (1. -. probs.(i3))
    (Probs.side_sensitization c ~probs ~gate:o ~pin:0);
  (* XOR: always sensitized *)
  Alcotest.(check (float 1e-9)) "xor" 1.
    (Probs.side_sensitization c ~probs ~gate:x ~pin:1);
  (* by driver id *)
  Alcotest.(check (float 1e-9)) "driver form" 0.25
    (Probs.sensitization_to_driver c ~probs ~gate:a ~driver:i1);
  Alcotest.(check bool) "unknown driver raises" true
    (try ignore (Probs.sensitization_to_driver c ~probs ~gate:a ~driver:x); false
     with Not_found -> true)

(* ----------------- path probabilities ----------------- *)

let exact_pij c =
  (* exhaustive over all input vectors (few inputs only) *)
  let n_in = Array.length c.Circuit.inputs in
  let n = Circuit.node_count c in
  let n_pos = Array.length c.Circuit.outputs in
  let counts = Array.make_matrix n n_pos 0 in
  let total = 1 lsl n_in in
  for code = 0 to total - 1 do
    let vec = Array.init n_in (fun i -> (code lsr i) land 1 = 1) in
    for g = 0 to n - 1 do
      if not (Circuit.is_input c g) then begin
        let det = Probs.detection_counts_for_vector c vec ~strike:g in
        Array.iteri (fun pos hit -> if hit then counts.(g).(pos) <- counts.(g).(pos) + 1) det
      end
    done
  done;
  Array.map (Array.map (fun k -> float_of_int k /. float_of_int total)) counts

let test_pij_c17_exact () =
  let c = Ser_circuits.Iscas.c17 () in
  let exact = exact_pij c in
  let mc =
    Probs.path_probabilities ~rng:(Ser_rng.Rng.create 9) ~vectors:20_000 c
  in
  for g = 0 to Circuit.node_count c - 1 do
    if not (Circuit.is_input c g) then
      Array.iteri
        (fun pos pe ->
          Alcotest.(check bool)
            (Printf.sprintf "gate %d PO %d: %.3f vs %.3f" g pos pe
               mc.Probs.p.(g).(pos))
            true
            (Float.abs (pe -. mc.Probs.p.(g).(pos)) < 0.02))
        exact.(g)
  done

let test_pjj_is_one () =
  let c = Ser_circuits.Iscas.c17 () in
  let pp = Probs.path_probabilities ~rng:(Ser_rng.Rng.create 1) ~vectors:620 c in
  Array.iteri
    (fun pos id ->
      Alcotest.(check (float 1e-9)) "P_jj = 1" 1. pp.Probs.p.(id).(pos))
    c.Circuit.outputs

let test_pij_input_rows_zero () =
  let c = Ser_circuits.Iscas.c17 () in
  let pp = Probs.path_probabilities ~rng:(Ser_rng.Rng.create 1) ~vectors:62 c in
  Array.iter
    (fun id ->
      Array.iter
        (fun v -> Alcotest.(check (float 0.)) "PI row zero" 0. v)
        pp.Probs.p.(id))
    c.Circuit.inputs

let pij_brute_force_prop =
  QCheck.Test.make ~name:"fault sim matches per-vector flip on random circuits"
    ~count:20 QCheck.small_nat
    (fun seed ->
      (* build a small random circuit *)
      let rng = Ser_rng.Rng.create (seed + 1000) in
      let b = Circuit.Builder.create () in
      let inputs = List.init 4 (fun i -> Circuit.Builder.add_input b (Printf.sprintf "i%d" i)) in
      let nodes = ref (Array.of_list inputs) in
      for _ = 1 to 8 do
        let pick () = !nodes.(Ser_rng.Rng.int rng (Array.length !nodes)) in
        let a = pick () in
        let c0 = pick () in
        let kind = Ser_rng.Rng.choose rng [| Gate.Nand; Gate.Nor; Gate.And; Gate.Or |] in
        let g = Circuit.Builder.add_gate b kind [ a; c0 ] in
        nodes := Array.append !nodes [| g |]
      done;
      (* outputs: last two created nodes, plus mark all dangling as outputs *)
      let c =
        Array.iter
          (fun id -> Circuit.Builder.set_output b id)
          (Array.sub !nodes (Array.length !nodes - 2) 2);
        match Circuit.Builder.build_trimmed b with
        | Ok c -> c
        | Error _ -> Ser_circuits.Iscas.c17 ()
      in
      let exact = exact_pij c in
      let mc = Probs.path_probabilities ~rng:(Ser_rng.Rng.create seed) ~vectors:20_000 c in
      let ok = ref true in
      for g = 0 to Circuit.node_count c - 1 do
        if not (Circuit.is_input c g) then
          Array.iteri
            (fun pos pe ->
              if Float.abs (pe -. mc.Probs.p.(g).(pos)) > 0.03 then ok := false)
            exact.(g)
      done;
      !ok)

(* a random fan-out-free circuit: every signal is consumed exactly once *)
let random_tree seed =
  let rng = Ser_rng.Rng.create seed in
  let b = Circuit.Builder.create () in
  let available = ref [] in
  for i = 0 to 5 do
    available := Circuit.Builder.add_input b (Printf.sprintf "i%d" i) :: !available
  done;
  while List.length !available > 1 do
    match !available with
    | a :: c0 :: rest ->
      let kind =
        Ser_rng.Rng.choose rng
          [| Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor |]
      in
      let g = Circuit.Builder.add_gate b kind [ a; c0 ] in
      available := rest @ [ g ]
    | _ -> assert false
  done;
  Circuit.Builder.set_output b (List.hd !available);
  Circuit.Builder.build_exn b

let analytic_exact_on_trees_prop =
  QCheck.Test.make ~name:"analytic P_ij matches exhaustive on trees" ~count:25
    QCheck.small_nat
    (fun seed ->
      let c = random_tree seed in
      let analytic = Probs.path_probabilities_analytic c in
      let exact = exact_pij c in
      let ok = ref true in
      for g = 0 to Circuit.node_count c - 1 do
        if not (Circuit.is_input c g) then
          Array.iteri
            (fun pos pe ->
              if Float.abs (pe -. analytic.Probs.p.(g).(pos)) > 1e-9 then
                ok := false)
            exact.(g)
      done;
      !ok)

let test_analytic_close_on_c17 () =
  let c = Ser_circuits.Iscas.c17 () in
  let analytic = Probs.path_probabilities_analytic c in
  let exact = exact_pij c in
  (* reconvergence makes it approximate; it must stay correlated *)
  let fa = Array.concat (Array.to_list analytic.Probs.p) in
  let fe = Array.concat (Array.to_list exact) in
  Alcotest.(check bool) "correlated" true (Ser_linalg.Stats.pearson fa fe > 0.85);
  (* PO gates keep P_jj = 1 *)
  Array.iteri
    (fun pos id ->
      Alcotest.(check (float 1e-9)) "P_jj" 1. analytic.Probs.p.(id).(pos))
    c.Circuit.outputs

let test_biased_inputs () =
  let c = Ser_circuits.Iscas.c17 () in
  let pi_probs = [| 0.9; 0.9; 0.9; 0.9; 0.9 |] in
  let rng = Ser_rng.Rng.create 8 in
  let batch = Bitsim.random_batch ~pi_probs rng c ~n_patterns:62 in
  (* first input should be mostly ones over many draws *)
  let ones = ref 0 and total = ref 0 in
  for _ = 1 to 50 do
    let b = Bitsim.random_batch ~pi_probs rng c ~n_patterns:62 in
    ones := !ones + Bitsim.ones_count b c.Circuit.inputs.(0);
    total := !total + 62
  done;
  ignore batch;
  let f = float_of_int !ones /. float_of_int !total in
  Alcotest.(check bool) (Printf.sprintf "bias %.2f" f) true
    (f > 0.85 && f < 0.95);
  (* analytic signal probabilities take the same bias *)
  let p = Probs.signal_probabilities ~pi_probs c in
  Alcotest.(check (float 1e-9)) "input prob" 0.9 p.(c.Circuit.inputs.(0));
  (* NAND(0.9, 0.9) = 1 - 0.81 *)
  Alcotest.(check (float 1e-9)) "nand prob" 0.19 p.(5);
  (* length validation *)
  try
    ignore (Bitsim.random_batch ~pi_probs:[| 0.5 |] rng c ~n_patterns:62);
    Alcotest.fail "length mismatch accepted"
  with Invalid_argument _ -> ()

let test_parallel_identical () =
  let c = Ser_circuits.Iscas.load "c432" in
  let run domains =
    Probs.path_probabilities ~domains ~rng:(Ser_rng.Rng.create 4) ~vectors:500 c
  in
  let seq = run 1 and par = run 3 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if v <> par.Probs.p.(i).(j) then
            Alcotest.failf "mismatch at gate %d PO %d" i j)
        row)
    seq.Probs.p

let test_detection_counts_requires_gate () =
  let c = Ser_circuits.Iscas.c17 () in
  try
    ignore (Probs.detection_counts_for_vector c (Array.make 5 false) ~strike:0);
    Alcotest.fail "PI strike accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "ser_logicsim"
    [
      ( "bitsim",
        [
          QCheck_alcotest.to_alcotest popcount_prop;
          Alcotest.test_case "mask_of" `Quick test_mask_of;
          QCheck_alcotest.to_alcotest eval_matches_bool_prop;
          Alcotest.test_case "ones_count" `Quick test_ones_count;
        ] );
      ( "signal probabilities",
        [
          Alcotest.test_case "tree exact" `Quick test_signal_probs_tree;
          Alcotest.test_case "xor family" `Quick test_signal_probs_xor;
          Alcotest.test_case "pi_prob" `Quick test_signal_probs_pi_prob;
          Alcotest.test_case "MC agrees" `Quick test_mc_close_to_analytic;
        ] );
      ( "sensitization",
        [ Alcotest.test_case "side values" `Quick test_side_sensitization ] );
      ( "path probabilities",
        [
          Alcotest.test_case "c17 vs exhaustive" `Slow test_pij_c17_exact;
          Alcotest.test_case "P_jj = 1" `Quick test_pjj_is_one;
          Alcotest.test_case "PI rows zero" `Quick test_pij_input_rows_zero;
          QCheck_alcotest.to_alcotest pij_brute_force_prop;
          QCheck_alcotest.to_alcotest analytic_exact_on_trees_prop;
          Alcotest.test_case "analytic close on c17" `Quick test_analytic_close_on_c17;
          Alcotest.test_case "biased inputs" `Quick test_biased_inputs;
          Alcotest.test_case "parallel = sequential" `Quick test_parallel_identical;
          Alcotest.test_case "PI strike rejected" `Quick test_detection_counts_requires_gate;
        ] );
    ]
