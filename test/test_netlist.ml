module Gate = Ser_netlist.Gate
module Circuit = Ser_netlist.Circuit
module Bench = Ser_netlist.Bench_format

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

(* ------------------------- gates ------------------------- *)

let test_gate_names () =
  List.iter
    (fun k ->
      Alcotest.(check (option bool))
        (Gate.to_string k) (Some true)
        (Option.map (fun k' -> k' = k) (Gate.of_string (Gate.to_string k))))
    Gate.all;
  Alcotest.(check bool) "INV alias" true (Gate.of_string "inv" = Some Gate.Not);
  Alcotest.(check bool) "BUFF alias" true (Gate.of_string "BUFF" = Some Gate.Buf);
  Alcotest.(check bool) "unknown" true (Gate.of_string "FOO" = None)

let truth_table kind =
  (* exhaustive truth table over 2 inputs *)
  List.map
    (fun (a, b) -> Gate.eval_bool kind [| a; b |])
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_truth_tables () =
  Alcotest.(check (list bool)) "AND" [ false; false; false; true ] (truth_table Gate.And);
  Alcotest.(check (list bool)) "NAND" [ true; true; true; false ] (truth_table Gate.Nand);
  Alcotest.(check (list bool)) "OR" [ false; true; true; true ] (truth_table Gate.Or);
  Alcotest.(check (list bool)) "NOR" [ true; false; false; false ] (truth_table Gate.Nor);
  Alcotest.(check (list bool)) "XOR" [ false; true; true; false ] (truth_table Gate.Xor);
  Alcotest.(check (list bool)) "XNOR" [ true; false; false; true ] (truth_table Gate.Xnor);
  Alcotest.(check bool) "NOT" false (Gate.eval_bool Gate.Not [| true |]);
  Alcotest.(check bool) "BUF" true (Gate.eval_bool Gate.Buf [| true |])

let test_three_input () =
  Alcotest.(check bool) "AND3" true (Gate.eval_bool Gate.And [| true; true; true |]);
  Alcotest.(check bool) "XOR3 parity" true
    (Gate.eval_bool Gate.Xor [| true; true; true |]);
  Alcotest.(check bool) "XNOR3" false
    (Gate.eval_bool Gate.Xnor [| true; true; true |])

let words_match_bools_prop =
  let kinds = [| Gate.Buf; Gate.Not; Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor |] in
  QCheck.Test.make ~name:"eval_words agrees with eval_bool bitwise" ~count:300
    QCheck.(triple (int_range 0 7) (int_range 1 4) small_nat)
    (fun (ki, arity, seed) ->
      let kind = kinds.(ki) in
      let arity = max (Gate.min_fanin kind) (min arity (Gate.max_fanin kind)) in
      let rng = Ser_rng.Rng.create seed in
      let words =
        Array.init arity (fun _ ->
            Int64.to_int (Int64.logand (Ser_rng.Rng.bits64 rng) 0x3FFFFFFFFFFFFFFFL))
      in
      let w = Gate.eval_words kind words in
      let ok = ref true in
      for bit = 0 to 61 do
        let bools = Array.map (fun x -> (x lsr bit) land 1 = 1) words in
        let expect = Gate.eval_bool kind bools in
        if (w lsr bit) land 1 = 1 <> expect then ok := false
      done;
      !ok)

let test_controlling () =
  Alcotest.(check bool) "AND ctrl" true (Gate.controlling_value Gate.And = Some false);
  Alcotest.(check bool) "NOR ctrl" true (Gate.controlling_value Gate.Nor = Some true);
  Alcotest.(check bool) "XOR none" true (Gate.controlling_value Gate.Xor = None);
  Alcotest.(check bool) "NAND side" true
    (Gate.sensitizing_side_value Gate.Nand = Some true);
  Alcotest.(check bool) "OR side" true
    (Gate.sensitizing_side_value Gate.Or = Some false)

let test_arity_errors () =
  Alcotest.(check bool) "inverting" true (Gate.inverting Gate.Nand);
  Alcotest.(check bool) "non-inverting" false (Gate.inverting Gate.Or);
  (try
     ignore (Gate.eval_bool Gate.And [| true |]);
     Alcotest.fail "AND1 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Gate.eval_bool Gate.Not [| true; false |]);
    Alcotest.fail "NOT2 accepted"
  with Invalid_argument _ -> ()

(* ------------------------- builder ------------------------- *)

let small_circuit () =
  let b = Circuit.Builder.create ~name:"t" () in
  let a = Circuit.Builder.add_input b "a" in
  let c = Circuit.Builder.add_input b "c" in
  let g1 = Circuit.Builder.add_gate b ~name:"g1" Gate.And [ a; c ] in
  let g2 = Circuit.Builder.add_gate b ~name:"g2" Gate.Not [ g1 ] in
  Circuit.Builder.set_output b g2;
  (Circuit.Builder.build_exn b, a, c, g1, g2)

let test_builder_basic () =
  let c, a, _, g1, g2 = small_circuit () in
  Alcotest.(check int) "nodes" 4 (Circuit.node_count c);
  Alcotest.(check int) "gates" 2 (Circuit.gate_count c);
  Alcotest.(check bool) "a is input" true (Circuit.is_input c a);
  Alcotest.(check bool) "g2 is output" true (Circuit.is_output c g2);
  Alcotest.(check bool) "g1 not output" false (Circuit.is_output c g1);
  let nd = Circuit.node c g1 in
  Alcotest.(check int) "fanin count" 2 (Array.length nd.Circuit.fanin);
  Alcotest.(check int) "fanout count" 1 (Array.length nd.Circuit.fanout);
  Alcotest.(check (option int)) "find g1" (Some g1) (Circuit.find_by_name c "g1");
  Alcotest.(check (option int)) "output index" (Some 0) (Circuit.output_index c g2);
  Alcotest.(check (option int)) "non-output" None (Circuit.output_index c g1)

let test_builder_errors () =
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  (try
     ignore (Circuit.Builder.add_input b "a");
     Alcotest.fail "duplicate input name accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Circuit.Builder.add_gate b Gate.Not [ 99 ]);
     Alcotest.fail "unknown fanin accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Circuit.Builder.add_gate b Gate.Input [ a ]);
     Alcotest.fail "Input kind accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Circuit.Builder.add_gate b Gate.Xor [ a; a ]);
     Alcotest.fail "XOR duplicate pins accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Circuit.Builder.add_gate b Gate.And [ a ]);
    Alcotest.fail "AND1 accepted"
  with Invalid_argument _ -> ()

let test_build_failures () =
  let b = Circuit.Builder.create () in
  (match Circuit.Builder.build b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty circuit accepted");
  let a = Circuit.Builder.add_input b "a" in
  let g = Circuit.Builder.add_gate b Gate.Not [ a ] in
  (match Circuit.Builder.build b with
  | Error _ -> () (* no outputs *)
  | Ok _ -> Alcotest.fail "no-output circuit accepted");
  let _dangling = Circuit.Builder.add_gate b Gate.Not [ a ] in
  Circuit.Builder.set_output b g;
  match Circuit.Builder.build b with
  | Error msg ->
    Alcotest.(check bool) "mentions dangling" true
      (contains ~sub:"dangling" msg)
  | Ok _ -> Alcotest.fail "dangling accepted"

let test_build_trimmed () =
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  let g = Circuit.Builder.add_gate b ~name:"keep" Gate.Not [ a ] in
  let _d = Circuit.Builder.add_gate b ~name:"drop" Gate.Not [ a ] in
  Circuit.Builder.set_output b g;
  match Circuit.Builder.build_trimmed b with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check int) "trimmed to 1 gate" 1 (Circuit.gate_count c);
    Alcotest.(check (option int)) "kept gate present" (Some 1)
      (Circuit.find_by_name c "keep");
    Alcotest.(check (option int)) "dropped gate gone" None
      (Circuit.find_by_name c "drop")

let test_levels_and_cones () =
  let c, a, b_in, g1, g2 = small_circuit () in
  let lv = Circuit.levels_from_inputs c in
  Alcotest.(check int) "input level" 0 lv.(a);
  Alcotest.(check int) "g1 level" 1 lv.(g1);
  Alcotest.(check int) "g2 level" 2 lv.(g2);
  Alcotest.(check int) "depth" 2 (Circuit.depth c);
  let lo = Circuit.levels_to_outputs c in
  Alcotest.(check int) "g2 to out" 0 lo.(g2);
  Alcotest.(check int) "g1 to out" 1 lo.(g1);
  Alcotest.(check int) "a to out" 2 lo.(a);
  Alcotest.(check (list int)) "fanout cone of a" [ a; g1; g2 ]
    (Array.to_list (Circuit.fanout_cone c a));
  Alcotest.(check (list int)) "fanin cone of g2" [ a; b_in; g1; g2 ]
    (Array.to_list (Circuit.fanin_cone c g2));
  Alcotest.(check (list int)) "reachable outputs" [ 0 ]
    (Array.to_list (Circuit.reachable_outputs c g1))

let test_stats () =
  let c, _, _, _, _ = small_circuit () in
  let s = Circuit.stats c in
  Alcotest.(check int) "inputs" 2 s.Circuit.n_inputs;
  Alcotest.(check int) "outputs" 1 s.Circuit.n_outputs;
  Alcotest.(check int) "gates" 2 s.Circuit.n_gates;
  Alcotest.(check int) "depth" 2 s.Circuit.depth;
  Alcotest.(check int) "max fanin" 2 s.Circuit.max_fanin

(* ------------------------- bench format ------------------------- *)

let sample_bench = {|
# a comment
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(n1, b)
n1 = NOT(a)
|}

let test_parse_forward_refs () =
  match Bench.parse_string sample_bench with
  | Error e -> Alcotest.fail (Ser_util.Diag.to_string e)
  | Ok c ->
    Alcotest.(check int) "gates" 2 (Circuit.gate_count c);
    Alcotest.(check int) "outputs" 1 (Array.length c.Circuit.outputs);
    (* forward reference resolved: n1 defined after use *)
    let y = Option.get (Circuit.find_by_name c "y") in
    Alcotest.(check bool) "y is output" true (Circuit.is_output c y)

let test_parse_errors () =
  let check_err ?line text frag =
    match Bench.parse_string text with
    | Ok _ -> Alcotest.fail ("accepted: " ^ frag)
    | Error d ->
      let msg = Ser_util.Diag.to_string d in
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S in %S" frag msg)
        true
        (contains ~sub:frag msg);
      (* every parse failure must be located on a real line *)
      let reported = Ser_util.Diag.context_value d "line" in
      Alcotest.(check bool)
        (Printf.sprintf "line context present in %S" msg)
        true (reported <> None);
      (match line with
      | Some expected ->
        Alcotest.(check (option string))
          (Printf.sprintf "line number in %S" msg)
          (Some (string_of_int expected))
          reported
      | None -> ())
  in
  check_err ~line:3 "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n" "FROB";
  check_err ~line:3 "INPUT(a)\nOUTPUT(y)\ny = NOT(zzz)\n" "zzz";
  check_err "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = NOT(y)\n" "cycle";
  check_err ~line:2 "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n" "duplicate";
  check_err ~line:3 "INPUT(a)\nOUTPUT(y)\ny = NOT(a" ")";
  (* arity violations are parse errors with a line, not Invalid_argument *)
  check_err ~line:3 "INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n" "NOT";
  check_err ~line:2 "INPUT(a)\nOUTPUT(y)\n" "undefined";
  check_err ~line:4 "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nz = NOT(a)\n" "dangling"

(* every file in the malformed-input corpus must yield a located Diag error —
   never an exception, a hang, or silent acceptance *)
let test_corpus_malformed () =
  (* dune runtest runs with cwd = test/; direct execution may not *)
  let dir =
    if Sys.file_exists "corpus" then "corpus" else "test/corpus"
  in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".bench")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      match Bench.parse_file path with
      | Ok _ -> Alcotest.fail (Printf.sprintf "corpus file accepted: %s" f)
      | Error d ->
        let msg = Ser_util.Diag.to_string d in
        Alcotest.(check bool)
          (Printf.sprintf "%s: line context in %S" f msg)
          true
          (Ser_util.Diag.context_value d "line" <> None))
    files

let test_oversized_line () =
  let big = String.make 70_000 'a' in
  let text = Printf.sprintf "INPUT(a)\nOUTPUT(y)\ny = NOT(%s)\n" big in
  match Bench.parse_string text with
  | Ok _ -> Alcotest.fail "accepted oversized line"
  | Error d ->
    let msg = Ser_util.Diag.to_string d in
    Alcotest.(check bool) ("mentions limit: " ^ msg) true (contains ~sub:"exceeds" msg)

(* a 10k-deep inverter chain must parse without Stack_overflow: the topo sort
   is iterative, so depth is bounded by heap, not the OS stack *)
let test_deep_chain () =
  let n = 10_000 in
  let buf = Buffer.create (n * 16) in
  Buffer.add_string buf "INPUT(n0)\n";
  Buffer.add_string buf (Printf.sprintf "OUTPUT(n%d)\n" n);
  for i = 1 to n do
    Buffer.add_string buf (Printf.sprintf "n%d = NOT(n%d)\n" i (i - 1))
  done;
  match Bench.parse_string (Buffer.contents buf) with
  | Error e -> Alcotest.fail (Ser_util.Diag.to_string e)
  | Ok c -> Alcotest.(check int) "gates" n (Circuit.gate_count c)

(* a long cycle must be reported as a cycle, not blow the stack *)
let test_deep_cycle () =
  let n = 5_000 in
  let buf = Buffer.create (n * 16) in
  Buffer.add_string buf "INPUT(a)\nOUTPUT(y)\n";
  Buffer.add_string buf (Printf.sprintf "y = AND(a, n0)\n");
  Buffer.add_string buf (Printf.sprintf "n0 = NOT(n%d)\n" (n - 1));
  for i = 1 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "n%d = NOT(n%d)\n" i (i - 1))
  done;
  match Bench.parse_string (Buffer.contents buf) with
  | Ok _ -> Alcotest.fail "accepted deep cycle"
  | Error d ->
    let msg = Ser_util.Diag.to_string d in
    Alcotest.(check bool) ("mentions cycle: " ^ msg) true (contains ~sub:"cycle" msg)

let test_single_input_normalisation () =
  match Bench.parse_string "INPUT(a)\nOUTPUT(y)\ny = AND(a)\n" with
  | Error e -> Alcotest.fail (Ser_util.Diag.to_string e)
  | Ok c ->
    let y = Option.get (Circuit.find_by_name c "y") in
    Alcotest.(check bool) "AND1 becomes BUF" true
      ((Circuit.node c y).Circuit.kind = Gate.Buf)

let test_roundtrip_c17 () =
  let c = Ser_circuits.Iscas.c17 () in
  let text = Bench.to_string c in
  match Bench.parse_string text with
  | Error e -> Alcotest.fail (Ser_util.Diag.to_string e)
  | Ok c' ->
    Alcotest.(check int) "gates" (Circuit.gate_count c) (Circuit.gate_count c');
    Alcotest.(check int) "outputs" 2 (Array.length c'.Circuit.outputs);
    (* functional equivalence over all 32 input vectors *)
    for code = 0 to 31 do
      let vec = Array.init 5 (fun i -> (code lsr i) land 1 = 1) in
      let v1 = Ser_logicsim.Bitsim.eval_vector c vec in
      let v2 = Ser_logicsim.Bitsim.eval_vector c' vec in
      Array.iteri
        (fun pos o ->
          let o' = c'.Circuit.outputs.(pos) in
          Alcotest.(check bool) "same output" v1.(o) v2.(o'))
        c.Circuit.outputs
    done

let roundtrip_prop =
  QCheck.Test.make ~name:"bench round-trip preserves structure" ~count:30
    QCheck.(small_nat)
    (fun seed ->
      let p = Option.get (Ser_circuits.Iscas.profile "c432") in
      let c = Ser_circuits.Iscas.synthesize ~seed p in
      let text = Bench.to_string c in
      match Bench.parse_string text with
      | Error _ -> false
      | Ok c' ->
        Circuit.gate_count c = Circuit.gate_count c'
        && Array.length c.Circuit.outputs = Array.length c'.Circuit.outputs
        && Circuit.depth c = Circuit.depth c')

(* The reader must be total: any byte string returns Ok or a located
   Error, never an exception. *)
let parser_total_prop =
  QCheck.Test.make ~name:"bench parser is total on arbitrary strings"
    ~count:500
    QCheck.(string_gen_of_size (Gen.int_bound 200) Gen.printable)
    (fun text ->
      match Bench.parse_string text with
      | Ok _ -> true
      | Error d -> Ser_util.Diag.context_value d "line" <> None
      | exception e ->
        QCheck.Test.fail_reportf "parser raised %s" (Printexc.to_string e))

(* ... including strings biased towards statement-like fragments, which
   reach deeper into the builder than uniform noise does *)
let parser_total_structured_prop =
  let fragment =
    QCheck.Gen.oneofl
      [ "INPUT(a)"; "OUTPUT(y)"; "y = NAND(a, b)"; "y = NOT(a"; "= AND(a)";
        "x = XOR(x, x)"; "OUTPUT("; "INPUT(a, b)"; "y = FROB(a)"; "# c";
        "y = NAND(a)"; "a = NOT(y)"; "y = AND()"; "INPUT(y)"; "((((" ]
  in
  let gen =
    QCheck.Gen.(list_size (int_bound 12) fragment >|= String.concat "\n")
  in
  QCheck.Test.make ~name:"bench parser is total on statement soup" ~count:500
    (QCheck.make gen)
    (fun text ->
      match Bench.parse_string text with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "parser raised %s" (Printexc.to_string e))

(* ------------------------- verilog format ------------------------- *)

module Verilog = Ser_netlist.Verilog_format

let sample_verilog = {|
// structural sample
module top (a, b, c, y, z);
  input a, b, c;
  output y, z;
  wire w1, w2; /* comment */
  nand u1 (w1, a, b);
  xor (w2, w1, c);
  not (y, w2);
  assign z = w1;
endmodule
|}

let test_verilog_parse () =
  match Verilog.parse_string sample_verilog with
  | Error e -> Alcotest.fail (Ser_util.Diag.to_string e)
  | Ok c ->
    Alcotest.(check int) "gates (assign -> BUF)" 4 (Circuit.gate_count c);
    Alcotest.(check int) "inputs" 3 (Array.length c.Circuit.inputs);
    Alcotest.(check int) "outputs" 2 (Array.length c.Circuit.outputs);
    let z = Option.get (Circuit.find_by_name c "z") in
    Alcotest.(check bool) "alias is BUF" true ((Circuit.node c z).Circuit.kind = Gate.Buf)

let test_verilog_semantics () =
  let c = Result.get_ok (Verilog.parse_string sample_verilog) in
  (* y = !( (a nand b) xor c ), z = a nand b *)
  for code = 0 to 7 do
    let a = code land 1 = 1 and b = code land 2 = 2 and cc = code land 4 = 4 in
    let values = Ser_logicsim.Bitsim.eval_vector c [| a; b; cc |] in
    let w1 = not (a && b) in
    let y = Option.get (Circuit.find_by_name c "y") in
    let z = Option.get (Circuit.find_by_name c "z") in
    Alcotest.(check bool) "y" (not (w1 <> cc)) values.(y);
    Alcotest.(check bool) "z" w1 values.(z)
  done

let test_verilog_roundtrip () =
  let c = Ser_circuits.Iscas.load "c432" in
  let text = Verilog.to_string c in
  match Verilog.parse_string text with
  | Error e -> Alcotest.fail (Ser_util.Diag.to_string e)
  | Ok c' ->
    Alcotest.(check int) "gates" (Circuit.gate_count c) (Circuit.gate_count c');
    Alcotest.(check int) "depth" (Circuit.depth c) (Circuit.depth c');
    (* functional equivalence on random vectors *)
    let rng = Ser_rng.Rng.create 9 in
    for _ = 1 to 10 do
      let vec = Array.map (fun _ -> Ser_rng.Rng.bool rng) c.Circuit.inputs in
      let v1 = Ser_logicsim.Bitsim.eval_vector c vec in
      let v2 = Ser_logicsim.Bitsim.eval_vector c' vec in
      Array.iteri
        (fun pos o ->
          Alcotest.(check bool) "same function" v1.(o)
            v2.(c'.Circuit.outputs.(pos)))
        c.Circuit.outputs
    done

let test_verilog_identifier_sanitisation () =
  (* numeric ISCAS names must come out as legal identifiers *)
  let c = Ser_circuits.Iscas.c17 () in
  let text = Verilog.to_string c in
  Alcotest.(check bool) "no bare numeric ports" false (contains ~sub:"(1," text);
  Alcotest.(check bool) "prefixed instead" true (contains ~sub:"n22" text);
  match Verilog.parse_string text with
  | Error e -> Alcotest.fail (Ser_util.Diag.to_string e)
  | Ok c' -> Alcotest.(check int) "parses back" 6 (Circuit.gate_count c')

let test_verilog_errors () =
  let check_err text frag =
    match Verilog.parse_string text with
    | Ok _ -> Alcotest.fail ("accepted: " ^ frag)
    | Error d ->
      let msg = Ser_util.Diag.to_string d in
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" msg frag)
        true (contains ~sub:frag msg)
  in
  check_err "module m (a); input a; output y; always @(a) y = a; endmodule" "always";
  check_err "module m (a, y); input a; output y; not (y, zz); endmodule" "zz";
  check_err "module m (a, y); input a; output y; not (y, a); not (y, a); endmodule"
    "driven twice";
  check_err
    "module m (a, y); input a; output y; wire w; not (y, w); not (w, y); endmodule"
    "cycle";
  check_err "module m (a, y); input a; output y; not (y, a);" "endmodule"

let () =
  Alcotest.run "ser_netlist"
    [
      ( "gate",
        [
          Alcotest.test_case "names" `Quick test_gate_names;
          Alcotest.test_case "truth tables" `Quick test_truth_tables;
          Alcotest.test_case "3-input" `Quick test_three_input;
          QCheck_alcotest.to_alcotest words_match_bools_prop;
          Alcotest.test_case "controlling values" `Quick test_controlling;
          Alcotest.test_case "arity errors" `Quick test_arity_errors;
        ] );
      ( "builder",
        [
          Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "errors" `Quick test_builder_errors;
          Alcotest.test_case "build failures" `Quick test_build_failures;
          Alcotest.test_case "build_trimmed" `Quick test_build_trimmed;
          Alcotest.test_case "levels and cones" `Quick test_levels_and_cones;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "bench format",
        [
          Alcotest.test_case "forward refs" `Quick test_parse_forward_refs;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "malformed corpus" `Quick test_corpus_malformed;
          Alcotest.test_case "oversized line" `Quick test_oversized_line;
          Alcotest.test_case "deep chain (iterative topo)" `Quick test_deep_chain;
          Alcotest.test_case "deep cycle" `Quick test_deep_cycle;
          Alcotest.test_case "1-input normalisation" `Quick test_single_input_normalisation;
          Alcotest.test_case "c17 round trip" `Quick test_roundtrip_c17;
          QCheck_alcotest.to_alcotest roundtrip_prop;
          QCheck_alcotest.to_alcotest parser_total_prop;
          QCheck_alcotest.to_alcotest parser_total_structured_prop;
        ] );
      ( "verilog format",
        [
          Alcotest.test_case "parse" `Quick test_verilog_parse;
          Alcotest.test_case "semantics" `Quick test_verilog_semantics;
          Alcotest.test_case "round trip" `Quick test_verilog_roundtrip;
          Alcotest.test_case "identifier sanitisation" `Quick
            test_verilog_identifier_sanitisation;
          Alcotest.test_case "errors" `Quick test_verilog_errors;
        ] );
    ]
