module Rng = Ser_rng.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differ = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differ := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differ

let test_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 2)

let test_stream_deterministic () =
  let base = Rng.create 31 in
  let a = Rng.stream base 5 and b = Rng.stream base 5 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "stream i reproducible" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_stream_parent_untouched () =
  let a = Rng.create 37 in
  let b = Rng.copy a in
  ignore (Rng.stream a 9);
  ignore (Rng.stream a 0);
  for _ = 1 to 20 do
    Alcotest.(check int64) "parent not advanced" (Rng.bits64 b) (Rng.bits64 a)
  done

let test_stream_distinct () =
  let base = Rng.create 41 in
  let a = Rng.stream base 0 and b = Rng.stream base 1 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "distinct indices differ" true (!same < 2);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.stream: negative index") (fun () ->
      ignore (Rng.stream base (-1)))

(* pooled draws over many sibling streams must still look uniform:
   catches correlated or overlapping substreams *)
let test_stream_statistics () =
  let base = Rng.create 43 in
  let n_streams = 64 and per = 512 in
  let sum = ref 0. and sq = ref 0. in
  for i = 0 to n_streams - 1 do
    let r = Rng.stream base i in
    for _ = 1 to per do
      let u = Rng.uniform r in
      sum := !sum +. u;
      sq := !sq +. (u *. u)
    done
  done;
  let n = float_of_int (n_streams * per) in
  let mean = !sum /. n in
  let var = (!sq /. n) -. (mean *. mean) in
  Alcotest.(check bool) "pooled mean near 0.5" true
    (Float.abs (mean -. 0.5) < 0.01);
  Alcotest.(check bool) "pooled variance near 1/12" true
    (Float.abs (var -. (1. /. 12.)) < 0.005)

let int_bounds_prop =
  QCheck.Test.make ~name:"int within bound" ~count:500
    QCheck.(pair (int_range 1 1_000_000) small_nat)
    (fun (bound, seed) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_int_bound_one () =
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    Alcotest.(check int) "bound 1 gives 0" 0 (Rng.int rng 1)
  done;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_uniform_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let u = Rng.uniform rng in
    if u < 0. || u >= 1. then Alcotest.fail "uniform out of [0,1)"
  done

let test_uniform_mean () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.uniform rng
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_gaussian_moments () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let sum = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let g = Rng.gaussian rng in
    sum := !sum +. g;
    sq := !sq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.) < 0.1)

let test_bernoulli () =
  let rng = Rng.create 17 in
  let n = 10_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p near 0.3" true (Float.abs (p -. 0.3) < 0.03)

let shuffle_permutation_prop =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair (list small_int) small_nat)
    (fun (xs, seed) ->
      let a = Array.of_list xs in
      let rng = Rng.create seed in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let test_choose () =
  let rng = Rng.create 19 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    let v = Rng.choose rng a in
    if v < 1 || v > 3 then Alcotest.fail "choose out of range"
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let test_choose_weighted () =
  let rng = Rng.create 23 in
  (* zero-weight element must never be picked *)
  for _ = 1 to 500 do
    let v = Rng.choose_weighted rng [| ("never", 0.); ("always", 1.) |] in
    Alcotest.(check string) "never pick zero weight" "always" v
  done;
  (* frequencies follow weights *)
  let counts = Hashtbl.create 2 in
  for _ = 1 to 10_000 do
    let v = Rng.choose_weighted rng [| ("a", 3.); ("b", 1.) |] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let a = float_of_int (Hashtbl.find counts "a") in
  Alcotest.(check bool) "3:1 ratio" true (a > 7200. && a < 7800.);
  Alcotest.check_raises "bad weights"
    (Invalid_argument "Rng.choose_weighted: non-positive total weight")
    (fun () -> ignore (Rng.choose_weighted rng [| ("x", 0.) |]))

let test_range () =
  let rng = Rng.create 29 in
  for _ = 1 to 1000 do
    let v = Rng.range rng 5. 7. in
    if v < 5. || v >= 7. then Alcotest.fail "range out of bounds"
  done

let () =
  Alcotest.run "ser_rng"
    [
      ( "streams",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "stream determinism" `Quick test_stream_deterministic;
          Alcotest.test_case "stream parent untouched" `Quick
            test_stream_parent_untouched;
          Alcotest.test_case "stream independence" `Quick test_stream_distinct;
          Alcotest.test_case "stream statistics" `Quick test_stream_statistics;
        ] );
      ( "distributions",
        [
          QCheck_alcotest.to_alcotest int_bounds_prop;
          Alcotest.test_case "int bound 1" `Quick test_int_bound_one;
          Alcotest.test_case "uniform range" `Quick test_uniform_range;
          Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli;
          Alcotest.test_case "range" `Quick test_range;
        ] );
      ( "collections",
        [
          QCheck_alcotest.to_alcotest shuffle_permutation_prop;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "choose_weighted" `Quick test_choose_weighted;
        ] );
    ]
