module Lut = Ser_table.Lut

let checkf = Alcotest.(check (float 1e-9))
let checkf6 = Alcotest.(check (float 1e-6))

let t1d () =
  Lut.create ~axes:[| [| 0.; 1.; 2. |] |] ~values:[| 10.; 20.; 40. |]

let test_1d_grid_points () =
  let t = t1d () in
  checkf "at 0" 10. (Lut.eval1 t 0.);
  checkf "at 1" 20. (Lut.eval1 t 1.);
  checkf "at 2" 40. (Lut.eval1 t 2.)

let test_1d_interp () =
  let t = t1d () in
  checkf "mid 0-1" 15. (Lut.eval1 t 0.5);
  checkf "mid 1-2" 30. (Lut.eval1 t 1.5);
  checkf "quarter" 12.5 (Lut.eval1 t 0.25)

let test_1d_clamp () =
  let t = t1d () in
  checkf "below" 10. (Lut.eval1 t (-5.));
  checkf "above" 40. (Lut.eval1 t 100.)

let test_2d_bilinear () =
  (* f(x,y) = x + 10y sampled on a grid is reproduced exactly *)
  let t =
    Lut.build
      ~axes:[| [| 0.; 1.; 3. |]; [| 0.; 2. |] |]
      ~f:(fun q -> q.(0) +. (10. *. q.(1)))
  in
  checkf6 "corner" 0. (Lut.eval2 t 0. 0.);
  checkf6 "interior" (0.5 +. 10.) (Lut.eval2 t 0.5 1.);
  checkf6 "edge" (2. +. 20.) (Lut.eval2 t 2. 2.)

let multilinear_prop =
  (* any affine function is reproduced exactly by multilinear
     interpolation inside the grid *)
  QCheck.Test.make ~name:"3-D multilinear reproduces affine functions" ~count:100
    QCheck.(
      quad (float_range (-2.) 2.) (float_range (-2.) 2.) (float_range (-2.) 2.)
        (triple (float_range 0. 1.) (float_range 0. 2.) (float_range 0. 3.)))
    (fun (a, b, c, (x, y, z)) ->
      let f q = 1. +. (a *. q.(0)) +. (b *. q.(1)) +. (c *. q.(2)) in
      let t =
        Lut.build
          ~axes:[| [| 0.; 0.4; 1. |]; [| 0.; 1.; 2. |]; [| 0.; 1.5; 3. |] |]
          ~f
      in
      let got = Lut.eval t [| x; y; z |] in
      let want = f [| x; y; z |] in
      Float.abs (got -. want) < 1e-9)

let test_singleton_axis () =
  let t =
    Lut.create ~axes:[| [| 5. |]; [| 0.; 1. |] |] ~values:[| 1.; 3. |]
  in
  checkf "constant along singleton" 2. (Lut.eval t [| 99.; 0.5 |])

let test_validation () =
  Alcotest.check_raises "non-increasing axis"
    (Invalid_argument "Lut.create: axis not strictly increasing") (fun () ->
      ignore (Lut.create ~axes:[| [| 1.; 1. |] |] ~values:[| 0.; 0. |]));
  Alcotest.check_raises "empty axis" (Invalid_argument "Lut.create: empty axis")
    (fun () -> ignore (Lut.create ~axes:[| [||] |] ~values:[||]));
  Alcotest.check_raises "wrong count"
    (Invalid_argument "Lut.create: value count does not match grid size")
    (fun () -> ignore (Lut.create ~axes:[| [| 0.; 1. |] |] ~values:[| 0. |]));
  let t = t1d () in
  Alcotest.check_raises "arity" (Invalid_argument "Lut.eval: arity mismatch")
    (fun () -> ignore (Lut.eval t [| 0.; 0. |]))

let test_grid_value () =
  let t = t1d () in
  checkf "index 2" 40. (Lut.grid_value t [| 2 |]);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Lut.grid_value: index out of range") (fun () ->
      ignore (Lut.grid_value t [| 3 |]))

let test_map_merge () =
  let t = t1d () in
  let doubled = Lut.map (fun v -> 2. *. v) t in
  checkf "map" 40. (Lut.eval1 doubled 1.);
  let sum = Lut.merge ( +. ) t doubled in
  checkf "merge" 60. (Lut.eval1 sum 1.);
  let other = Lut.create ~axes:[| [| 0.; 9. |] |] ~values:[| 0.; 0. |] in
  Alcotest.check_raises "grid mismatch" (Invalid_argument "Lut.merge: grid mismatch")
    (fun () -> ignore (Lut.merge ( +. ) t other))

let test_dims_axes () =
  let t = t1d () in
  Alcotest.(check int) "dims" 1 (Lut.dims t);
  let axes = Lut.axes t in
  checkf "axis copy" 2. axes.(0).(2)

let test_interpolate_1d () =
  let xs = [| 0.; 10.; 20. |] and ys = [| 0.; 100.; 150. |] in
  checkf "mid" 50. (Lut.interpolate_1d ~xs ~ys 5.);
  checkf "clamped low" 0. (Lut.interpolate_1d ~xs ~ys (-1.));
  checkf "clamped high" 150. (Lut.interpolate_1d ~xs ~ys 99.);
  checkf "singleton" 7. (Lut.interpolate_1d ~xs:[| 1. |] ~ys:[| 7. |] 42.)

let build_eval_prop =
  QCheck.Test.make ~name:"build samples f exactly at grid points" ~count:50
    QCheck.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (a, b) ->
      let f q = (a *. q.(0) *. q.(0)) +. b in
      let axes = [| [| -1.; 0.; 2.; 3. |] |] in
      let t = Lut.build ~axes ~f in
      Array.for_all
        (fun x -> Float.abs (Lut.eval1 t x -. f [| x |]) < 1e-9)
        axes.(0))

let () =
  Alcotest.run "ser_table"
    [
      ( "lut",
        [
          Alcotest.test_case "1d grid points" `Quick test_1d_grid_points;
          Alcotest.test_case "1d interpolation" `Quick test_1d_interp;
          Alcotest.test_case "1d clamping" `Quick test_1d_clamp;
          Alcotest.test_case "2d bilinear" `Quick test_2d_bilinear;
          QCheck_alcotest.to_alcotest multilinear_prop;
          Alcotest.test_case "singleton axis" `Quick test_singleton_axis;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "grid_value" `Quick test_grid_value;
          Alcotest.test_case "map/merge" `Quick test_map_merge;
          Alcotest.test_case "dims/axes" `Quick test_dims_axes;
          Alcotest.test_case "interpolate_1d" `Quick test_interpolate_1d;
          QCheck_alcotest.to_alcotest build_eval_prop;
        ] );
    ]
