(* sertool: command-line front end for the ASERTA/SERTOPT library.

   Circuits are named either by benchmark name (c17, c432, ... -- the
   synthetic ISCAS'85-alikes) or by a path to an ISCAS .bench file. *)

(* Exit codes, so scripts can tell failure classes apart:
   0 success (including budget-degraded results -- they are still valid),
   2 input/parse errors (bad file, unknown circuit, malformed flags),
   3 numerical failures (spice/aserta diagnostics),
   4 budget diagnostics surfaced as errors. *)
let exit_ok = 0
let exit_input = 2
let exit_numerical = 3
let exit_budget = 4

(* merge found the same job id with different payloads, or a record
   whose digest does not match its payload: somebody's journal lies,
   and no merged document can be trusted *)
let exit_integrity = 5

let exit_code_of_diag (d : Ser_util.Diag.t) =
  match d.Ser_util.Diag.subsystem with
  | "spice" | "cell" | "aserta" | "sertopt" -> exit_numerical
  | "budget" -> exit_budget
  | _ -> exit_input

let render_diag d = prerr_endline ("sertool: " ^ Ser_util.Diag.to_string d)

(* -j N pins the worker-pool width for the whole process (0 =
   autodetect); the default -1 leaves the SERTOOL_JOBS variable /
   autodetection in charge. Results are bit-identical for every
   setting; see lib/par. *)
let apply_jobs j = if j >= 0 then Ser_par.Par.set_jobs j

module Obs = Ser_obs.Obs

(* --trace/--metrics: arrange the export; the files are written by the
   obs process-exit hook (and on failure degrade to a stderr
   diagnostic — observability must never take the analysis down). *)
let apply_obs (trace, metrics, sample) =
  (match trace with Some p -> Obs.set_trace_file (Some p) | None -> ());
  (match metrics with Some p -> Obs.set_metrics_file (Some p) | None -> ());
  match sample with Some n -> Obs.Trace.set_sample_every n | None -> ()

(* one-line pool summary on stderr after a heavy command, so timing
   investigations can see how the work was spread without the output
   format changing *)
let report_pool () =
  if Ser_par.Par.jobs () > 1 then
    prerr_endline
      ("sertool: " ^ Ser_util.Diag.to_string (Ser_par.Par.stats_diag ()))

(* user-facing failures (bad file, unknown name, located diagnostics)
   become a one-line stderr message and a classed exit code instead of
   "internal error" traces *)
let wrap f =
  try f () with
  | Ser_util.Diag.Diag_error d ->
    render_diag d;
    `Ok (exit_code_of_diag d)
  | Failure msg | Invalid_argument msg | Sys_error msg ->
    prerr_endline ("sertool: error: " ^ msg);
    `Ok exit_input

let or_diag = function Ok v -> v | Error d -> raise (Ser_util.Diag.Diag_error d)

(* The canonical request/handler pair (lib/cli) is the single place
   that loads netlists, builds libraries and executes the three core
   operations; one-shot commands, the batch worker and the serve daemon
   all go through it. The bin side keeps only flag parsing and
   pretty-printing. *)
module Request = Ser_cli.Request
module Handlers = Ser_cli.Handlers

let load_circuit spec = Handlers.load_circuit (Request.Spec spec)
let make_library vdds vths = Handlers.make_library ~vdds ~vths

(* ------------------------------------------------------------------ *)

let info_cmd spec =
  wrap @@ fun () ->
  let c = load_circuit spec in
  Format.printf "%s:@.%a@." c.Ser_netlist.Circuit.name
    Ser_netlist.Circuit.pp_stats
    (Ser_netlist.Circuit.stats c);
  `Ok exit_ok

let generate_cmd name seed format output =
  wrap @@ fun () ->
  if not (List.mem name Ser_circuits.Iscas.names) then
    failwith (Printf.sprintf "unknown benchmark %S" name)
  else begin
    let c = Ser_circuits.Iscas.load ~seed name in
    let render =
      match format with
      | "bench" -> Ser_netlist.Bench_format.to_string
      | "verilog" -> Ser_netlist.Verilog_format.to_string
      | "dot" -> Ser_netlist.Dot_export.to_dot ?annotation:None
      | other -> failwith (Printf.sprintf "unknown format %S" other)
    in
    (match output with
    | Some path ->
      let oc = open_out path in
      output_string oc (render c);
      close_out oc;
      Printf.printf "wrote %s (%d gates)\n" path
        (Ser_netlist.Circuit.gate_count c)
    | None -> print_string (render c));
    `Ok exit_ok
  end

(* An ODC report on disk is the JSON document "sertool odc -o" wrote
   (or the "report" member of the odc payload); its digest binds it to
   one netlist, so feeding it to the wrong circuit is a typed error,
   not a silent wrong answer. *)
let load_odc_report path =
  let ic =
    try open_in_bin path with Sys_error msg -> failwith msg
  in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Ser_util.Json.of_string s with
  | Error msg ->
    failwith (Printf.sprintf "unreadable ODC report %s: %s" path msg)
  | Ok j ->
    let j =
      (* accept the whole odc payload too, not just the bare report *)
      match Ser_util.Json.member "report" j with Some r -> r | None -> j
    in
    or_diag (Ser_odc.Odc.of_json j)

let analyze_cmd jobs obs backend spec vectors charge top vdds vths odc json
    dot =
  wrap @@ fun () ->
  apply_jobs jobs;
  apply_obs obs;
  Obs.Trace.with_span "sertool.analyze" @@ fun () ->
  let req =
    Request.make ~backend ~vectors ~charge ~top ~vdds ~vths Request.Analyze
      (Request.Spec spec)
  in
  let odc_report = Option.map load_odc_report odc in
  let t0 = Unix.gettimeofday () in
  let ({ Handlers.assignment = asg; result } as analyzed) =
    or_diag (Handlers.analyze ?odc_report req)
  in
  let dt = Unix.gettimeofday () -. t0 in
  (* both backends expose per-gate values on the same surface; the
     table below only needs the shared projection *)
  let c, values, gen_width, critical_delay, total =
    match result with
    | Handlers.Aserta r ->
      ( r.Aserta.Analysis.circuit,
        r.Aserta.Analysis.unreliability,
        r.Aserta.Analysis.gen_width,
        r.Aserta.Analysis.timing.Ser_sta.Timing.critical_delay,
        r.Aserta.Analysis.total )
    | Handlers.Serpp s ->
      ( s.Ser_serpp.Serpp.circuit,
        s.Ser_serpp.Serpp.estimate,
        s.Ser_serpp.Serpp.gen_width,
        s.Ser_serpp.Serpp.timing.Ser_sta.Timing.critical_delay,
        s.Ser_serpp.Serpp.total )
  in
  Printf.printf "circuit %s: %d gates, critical delay %.1f ps\n"
    c.Ser_netlist.Circuit.name
    (Ser_netlist.Circuit.gate_count c)
    critical_delay;
  (match result with
  | Handlers.Aserta _ ->
    Printf.printf
      "total unreliability U = %.1f  (%d vectors, %.1f fC, %.2f s)\n\n" total
      vectors charge dt
  | Handlers.Serpp _ ->
    Printf.printf
      "total unreliability U = %.1f  (serpp single-pass estimate, %.1f fC, \
       %.2f s)\n\n"
      total charge dt);
  (match odc with
  | Some path ->
    let pruned =
      match Obs.Metrics.find_counter "aserta.odc_pruned" with
      | Some ctr -> Obs.Metrics.value ctr
      | None -> 0
    in
    Printf.printf "odc: pruned %d provably-masked fault sites (report %s)\n"
      pruned path
  | None -> ());
  let idx = Array.init (Array.length values) Fun.id in
  Array.sort (fun a b -> compare values.(b) values.(a)) idx;
  Printf.printf "top %d softest gates:\n" top;
  let tbl =
    Ser_util.Ascii_table.create
      ~aligns:[ Ser_util.Ascii_table.Left; Ser_util.Ascii_table.Left ]
      [ "gate"; "cell"; "U_i"; "w_gen (ps)"; "share" ]
  in
  Array.iteri
    (fun k id ->
      if k < top && values.(id) > 0. then
        Ser_util.Ascii_table.add_row tbl
          [
            (Ser_netlist.Circuit.node c id).Ser_netlist.Circuit.name;
            Ser_device.Cell_params.to_string (Ser_sta.Assignment.get asg id);
            Printf.sprintf "%.1f" values.(id);
            Printf.sprintf "%.1f" gen_width.(id);
            Printf.sprintf "%.1f%%" (100. *. values.(id) /. total);
          ])
    idx;
  Ser_util.Ascii_table.print tbl;
  (match json with
  | Some path ->
    (match result with
    | Handlers.Aserta r ->
      Ser_repro.Report.write path (Ser_repro.Report.analysis_to_json asg r)
    | Handlers.Serpp _ ->
      (* the serpp report is the canonical analyze payload — the same
         document a serve client would receive for this request *)
      Ser_repro.Report.write path (Handlers.analyze_payload req analyzed));
    Printf.printf "wrote %s\n" path
  | None -> ());
  (match dot with
  | Some path ->
    let u_max = Array.fold_left Float.max 1e-12 values in
    let annotation =
      {
        Ser_netlist.Dot_export.label =
          (fun id ->
            if Ser_netlist.Circuit.is_input c id then None
            else Some (Printf.sprintf "U=%.1f" values.(id)));
        heat = (fun id -> values.(id) /. u_max);
      }
    in
    Ser_netlist.Dot_export.write_dot ~annotation path c;
    Printf.printf "wrote %s\n" path
  | None -> ());
  report_pool ();
  `Ok exit_ok

let odc_cmd jobs obs spec mode vectors seed threshold output =
  wrap @@ fun () ->
  apply_jobs jobs;
  apply_obs obs;
  Obs.Trace.with_span "sertool.odc" @@ fun () ->
  let req =
    Request.make ~vectors ~odc_mode:mode ~odc_seed:seed
      ~odc_threshold:threshold Request.Odc (Request.Spec spec)
  in
  let t0 = Unix.gettimeofday () in
  let r = or_diag (Handlers.odc req) in
  let dt = Unix.gettimeofday () -. t0 in
  print_string (Ser_odc.Odc.render r);
  Printf.printf
    "%d sites: %d proven masked, %d observed, %d sampled-unobserved (%.2f s)\n"
    (Array.length r.Ser_odc.Odc.sites)
    (Ser_odc.Odc.n_proven r) (Ser_odc.Odc.n_observed r)
    (Ser_odc.Odc.n_sampled r) dt;
  (match output with
  | Some path ->
    (* the bare report document, not the payload wrapper: this is the
       file analyze/optimize --odc consume *)
    Ser_repro.Report.write path (Ser_odc.Odc.to_json r);
    Printf.printf "wrote %s\n" path
  | None -> ());
  report_pool ();
  `Ok exit_ok

let optimize_cmd jobs obs spec vectors evals greedy eval_tier tier_k vdds vths
    budget_evals timeout checkpoint odc output json =
  wrap @@ fun () ->
  apply_jobs jobs;
  apply_obs obs;
  Obs.Trace.with_span "sertool.optimize" @@ fun () ->
  let req =
    Request.make ~vectors ~evals ~greedy ~eval_tier ~tier_k ~vdds ~vths
      ?budget_evals Request.Optimize (Request.Spec spec)
  in
  let odc_report = Option.map load_odc_report odc in
  let c = load_circuit spec in
  let lib = make_library vdds vths in
  let baseline = Sertopt.Optimizer.size_for_speed lib c in
  (* a budget always exists so that SIGINT/SIGTERM can cancel it: the
     optimizer then stops at its next poll and returns the best-so-far
     incumbent, which flushes the checkpoint and prints the partial
     summary instead of discarding the run *)
  let budget =
    Ser_util.Budget.create ?max_evals:budget_evals ?max_seconds:timeout ()
  in
  let initial =
    match checkpoint with
    | Some path when Sys.file_exists path ->
      let cp = or_diag (Sertopt.Checkpoint.restore path ~base:baseline) in
      Printf.printf "resuming from checkpoint %s (%d evals%s)\n" path
        cp.Sertopt.Checkpoint.evals
        (match cp.Sertopt.Checkpoint.cost with
        | Some v -> Printf.sprintf ", cost %.4f" v
        | None -> "");
      Some cp.Sertopt.Checkpoint.assignment
    | _ -> None
  in
  let restore_signals =
    let handler =
      Sys.Signal_handle (fun _ -> Ser_util.Budget.cancel budget)
    in
    let prev_int = Sys.signal Sys.sigint handler in
    let prev_term = Sys.signal Sys.sigterm handler in
    fun () ->
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigterm prev_term
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Fun.protect ~finally:restore_signals (fun () ->
        or_diag (Handlers.optimize ~budget ?initial ?odc_report req))
  in
  let dt = Unix.gettimeofday () -. t0 in
  let interrupted = Ser_util.Budget.was_cancelled budget in
  if interrupted then
    print_endline
      "interrupted (SIGINT/SIGTERM): returning the best-so-far incumbent; \
       partial summary and checkpoint follow";
  let b = r.Sertopt.Optimizer.baseline_metrics in
  let o = r.Sertopt.Optimizer.optimized_metrics in
  let rat = Sertopt.Cost.ratios ~baseline:b o in
  Printf.printf "unreliability: %.1f -> %.1f  (decrease %.1f%%)\n"
    b.Sertopt.Cost.unreliability o.Sertopt.Cost.unreliability
    (100. *. Sertopt.Optimizer.unreliability_reduction r);
  Printf.printf "area %.2fX  energy %.2fX  delay %.2fX  (%d cost evals, %.1f s)\n"
    rat.Sertopt.Cost.area rat.Sertopt.Cost.energy rat.Sertopt.Cost.delay
    r.Sertopt.Optimizer.evals dt;
  if r.Sertopt.Optimizer.degraded then
    print_endline
      "budget exhausted: result is the best incumbent found so far (degraded)";
  (match odc with
  | Some _ ->
    let v name =
      match Obs.Metrics.find_counter name with
      | Some c -> Obs.Metrics.value c
      | None -> 0
    in
    Printf.printf "odc stage: %d downsizing candidates proposed, %d accepted\n"
      (v "sertopt.odc_moves") (v "sertopt.odc_accepts")
  | None -> ());
  (match checkpoint with
  | None -> ()
  | Some path ->
    let cost =
      let dcfg = Sertopt.Optimizer.default_config in
      Sertopt.Cost.eval ~weights:dcfg.Sertopt.Optimizer.weights
        ~delay_slack:dcfg.Sertopt.Optimizer.delay_slack ~baseline:b o
    in
    or_diag
      (Sertopt.Checkpoint.save path ~cost ~evals:r.Sertopt.Optimizer.evals
         r.Sertopt.Optimizer.optimized);
    Printf.printf "wrote checkpoint %s\n" path);
  Format.printf "%a@."
    Sertopt.Optimizer.pp_knob_summary
    (Sertopt.Optimizer.knob_summary r);
  (match output with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc "# optimized cell assignment for %s\n"
      c.Ser_netlist.Circuit.name;
    Ser_sta.Assignment.fold_gates r.Sertopt.Optimizer.optimized ~init:()
      ~f:(fun () id cell ->
        Printf.fprintf oc "%s: %s\n"
          (Ser_netlist.Circuit.node c id).Ser_netlist.Circuit.name
          (Ser_device.Cell_params.to_string cell));
    close_out oc;
    Printf.printf "wrote %s\n" path);
  (match json with
  | Some path ->
    Ser_repro.Report.write path (Ser_repro.Report.optimization_to_json r);
    Printf.printf "wrote %s\n" path
  | None -> ());
  report_pool ();
  `Ok exit_ok

let rate_cmd jobs obs spec vectors clock q_slope top =
  wrap @@ fun () ->
  apply_jobs jobs;
  apply_obs obs;
  Obs.Trace.with_span "sertool.rate" @@ fun () ->
  let req =
    Request.make ~vectors ?clock ~q_slope ~top Request.Rate
      (Request.Spec spec)
  in
  let { Handlers.r_analysis; r_rate = r; _ } = or_diag (Handlers.rate req) in
  let c = r_analysis.Aserta.Analysis.circuit in
  Printf.printf
    "%s: SER = %.2f FIT (synthetic flux normalisation)\n\
     clock %.0f ps, exponential charge spectrum with Qs = %.1f fC\n\n"
    c.Ser_netlist.Circuit.name r.Aserta.Ser_rate.total
    r.Aserta.Ser_rate.clock_period q_slope;
  let idx = Array.init (Array.length r.Aserta.Ser_rate.per_gate) Fun.id in
  Array.sort
    (fun a b -> compare r.Aserta.Ser_rate.per_gate.(b) r.Aserta.Ser_rate.per_gate.(a))
    idx;
  Printf.printf "top %d contributors:\n" top;
  Array.iteri
    (fun k id ->
      if k < top && r.Aserta.Ser_rate.per_gate.(id) > 0. then
        Printf.printf "  %-12s %8.3f FIT (%.1f%%)\n"
          (Ser_netlist.Circuit.node c id).Ser_netlist.Circuit.name
          r.Aserta.Ser_rate.per_gate.(id)
          (100. *. r.Aserta.Ser_rate.per_gate.(id) /. r.Aserta.Ser_rate.total))
    idx;
  report_pool ();
  `Ok exit_ok

let xval_cmd jobs obs spec corpus vectors charge top json =
  wrap @@ fun () ->
  apply_jobs jobs;
  apply_obs obs;
  Obs.Trace.with_span "sertool.xval" @@ fun () ->
  (match corpus with
  | None ->
    let r = Ser_repro.Xval.run ~circuit:spec ~vectors ~charge ~top_n:top () in
    print_string (Ser_repro.Xval.render r);
    (match json with
    | Some path ->
      Ser_repro.Report.write path (Ser_repro.Xval.to_json r);
      Printf.printf "wrote %s\n" path
    | None -> ())
  | Some dir ->
    (* every .bench in the directory, name order — deterministic both
       in which circuits run and in the row order of the table *)
    let entries =
      try Sys.readdir dir
      with Sys_error msg -> failwith msg
    in
    let benches =
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".bench")
      |> List.sort compare
    in
    if benches = [] then
      failwith (Printf.sprintf "no .bench files in %s" dir);
    let results =
      List.map
        (fun f ->
          let c = load_circuit (Filename.concat dir f) in
          Ser_repro.Xval.run_circuit ~vectors ~charge ~top_n:top c)
        benches
    in
    print_string (Ser_repro.Xval.render_corpus results);
    (match json with
    | Some path ->
      Ser_repro.Report.write path (Ser_repro.Xval.corpus_to_json results);
      Printf.printf "wrote %s\n" path
    | None -> ()));
  report_pool ();
  `Ok exit_ok

let harden_cmd jobs spec method_ fraction output =
  wrap @@ fun () ->
  apply_jobs jobs;
  let c = load_circuit spec in
  let hardened =
    match method_ with
    | "tmr" -> Ser_harden.Transforms.tmr c
    | "ced" -> Ser_harden.Transforms.duplicate_with_compare c
    | "ptmr" ->
      let lib = make_library [] [] in
      let asg = Ser_sta.Assignment.uniform lib c in
      let cfg =
        { Aserta.Analysis.default_config with Aserta.Analysis.vectors = 3000 }
      in
      let analysis = Aserta.Analysis.run ~config:cfg lib asg in
      let protect = Ser_harden.Transforms.softest_gates analysis ~fraction in
      Ser_harden.Transforms.selective_tmr c ~protect
    | other -> failwith (Printf.sprintf "unknown method %S (tmr|ptmr|ced)" other)
  in
  Printf.printf "%s: %d gates -> %s: %d gates (%.2fX)\n" c.Ser_netlist.Circuit.name
    (Ser_netlist.Circuit.gate_count c)
    hardened.Ser_netlist.Circuit.name
    (Ser_netlist.Circuit.gate_count hardened)
    (float_of_int (Ser_netlist.Circuit.gate_count hardened)
    /. float_of_int (Ser_netlist.Circuit.gate_count c));
  (match output with
  | Some path ->
    Ser_netlist.Bench_format.write_file path hardened;
    Printf.printf "wrote %s\n" path
  | None -> print_string (Ser_netlist.Bench_format.to_string hardened));
  `Ok exit_ok

let pipeline_cmd jobs spec stages clock =
  wrap @@ fun () ->
  apply_jobs jobs;
  let c = load_circuit spec in
  let lib = make_library [] [] in
  let slices =
    if stages = 1 then [ c ]
    else Ser_pipeline.Pipeline.split_by_levels c ~stages
  in
  let p = Ser_pipeline.Pipeline.create ~lib slices in
  let aserta =
    { Aserta.Analysis.default_config with Aserta.Analysis.vectors = 2000 }
  in
  let r = Ser_pipeline.Pipeline.analyze ~aserta ~lib ?clock_period:clock p in
  Printf.printf
    "%s as a %d-stage pipeline: clock %.0f ps (min %.0f ps), %d flip-flops\n"
    c.Ser_netlist.Circuit.name stages r.Ser_pipeline.Pipeline.clock_period
    r.Ser_pipeline.Pipeline.min_period
    (Ser_pipeline.Pipeline.flipflop_count p);
  List.iter
    (fun (sn, v) -> Printf.printf "  %-24s SER %10.2f\n" sn v)
    r.Ser_pipeline.Pipeline.stage_ser;
  Printf.printf "  %-24s SER %10.2f\n" "flip-flops" r.Ser_pipeline.Pipeline.ff_ser;
  Printf.printf "  %-24s SER %10.2f\n" "total" r.Ser_pipeline.Pipeline.total;
  report_pool ();
  `Ok exit_ok

let timing_cmd jobs spec n_paths vdds vths =
  wrap @@ fun () ->
  apply_jobs jobs;
  let c = load_circuit spec in
  let lib = make_library vdds vths in
  let asg = Sertopt.Optimizer.size_for_speed lib c in
  let t = Ser_sta.Timing.analyze lib asg in
  Printf.printf "%s: critical delay %.1f ps across %d gates (depth %d)\n\n"
    c.Ser_netlist.Circuit.name t.Ser_sta.Timing.critical_delay
    (Ser_netlist.Circuit.gate_count c)
    (Ser_netlist.Circuit.depth c);
  let paths = Ser_sta.Paths.k_worst_paths asg t ~k:n_paths in
  Array.iteri
    (fun rank path ->
      Printf.printf "path %d: delay %.1f ps\n" (rank + 1)
        (Ser_sta.Paths.path_delay t path);
      Array.iter
        (fun id ->
          let nd = Ser_netlist.Circuit.node c id in
          if nd.Ser_netlist.Circuit.kind = Ser_netlist.Gate.Input then
            Printf.printf "  %-12s (input)                      arrival %8.1f\n"
              nd.Ser_netlist.Circuit.name t.Ser_sta.Timing.arrival.(id)
          else
            Printf.printf "  %-12s %-28s delay %6.1f  arrival %8.1f  slack %6.1f\n"
              nd.Ser_netlist.Circuit.name
              (Ser_device.Cell_params.to_string (Ser_sta.Assignment.get asg id))
              t.Ser_sta.Timing.delays.(id)
              t.Ser_sta.Timing.arrival.(id)
              t.Ser_sta.Timing.slack.(id))
        path;
      print_newline ())
    paths;
  `Ok exit_ok

let export_deck_cmd spec strike vector charge output =
  wrap @@ fun () ->
  let c = load_circuit spec in
  let lib = make_library [] [] in
  let asg = Sertopt.Optimizer.size_for_speed lib c in
  let strike_id =
    match Ser_netlist.Circuit.find_by_name c strike with
    | Some id -> id
    | None -> failwith (Printf.sprintf "no gate named %S" strike)
  in
  let n_in = Array.length c.Ser_netlist.Circuit.inputs in
  let input_values =
    match vector with
    | Some bits ->
      if String.length bits <> n_in then
        failwith (Printf.sprintf "vector needs %d bits" n_in);
      Array.init n_in (fun i -> bits.[i] = '1')
    | None ->
      let rng = Ser_rng.Rng.create 1 in
      Array.init n_in (fun _ -> Ser_rng.Rng.bool rng)
  in
  let config =
    { Ser_spice.Circuit_sim.default_config with Ser_spice.Circuit_sim.charge }
  in
  Ser_spice.Deck_export.write_strike_deck ~config output c
    ~assignment:(Ser_sta.Assignment.get asg) ~input_values ~strike:strike_id;
  Printf.printf "wrote %s (strike on %s)\n" output strike;
  `Ok exit_ok

let export_lib_cmd kind fanin output =
  wrap @@ fun () ->
  match Ser_netlist.Gate.of_string kind with
  | None | Some Ser_netlist.Gate.Input ->
    failwith (Printf.sprintf "unknown gate kind %S" kind)
  | Some k ->
    let lib = Ser_cell.Library.create () in
    let cells = Ser_cell.Library.variants lib k fanin in
    Ser_cell.Liberty_export.write output lib ~cells;
    Printf.printf "wrote %s (%d cells)\n" output (List.length cells);
    `Ok exit_ok

let characterize_cmd kind fanin size length vdd vth =
  wrap @@ fun () ->
  match Ser_netlist.Gate.of_string kind with
  | None | Some Ser_netlist.Gate.Input ->
    failwith (Printf.sprintf "unknown gate kind %S" kind)
  | Some k ->
    let p = Ser_device.Cell_params.v ~size ~length ~vdd ~vth k fanin in
    Printf.printf "cell %s\n" (Ser_device.Cell_params.to_string p);
    Printf.printf "  input cap   : %.3f fF\n" (Ser_device.Gate_model.input_cap p);
    Printf.printf "  output cap  : %.3f fF\n" (Ser_device.Gate_model.output_cap p);
    Printf.printf "  area        : %.2f (min-inverter units)\n"
      (Ser_device.Gate_model.area p);
    Printf.printf "  leakage     : %.4f uW\n"
      (1000. *. Ser_device.Gate_model.leakage_power p);
    let cload = 4. *. Ser_device.Gate_model.input_cap p in
    let d_a = Ser_device.Gate_model.delay p ~input_ramp:20. ~cload in
    let d_t, r_t = Ser_spice.Char.delay_and_ramp p ~cload ~input_ramp:20. in
    Printf.printf "  FO4 delay   : %.2f ps analytic, %.2f ps transient (ramp %.1f ps)\n"
      d_a d_t r_t;
    let w_a =
      Ser_device.Gate_model.generated_glitch_width p
        ~node_cap:(cload +. Ser_device.Gate_model.output_cap p)
        ~charge:16. ~output_low:true
    in
    let w_t =
      Ser_spice.Char.generated_glitch_width p ~cload ~charge:16. ~output_low:true
    in
    Printf.printf "  glitch @16fC: %.1f ps analytic, %.1f ps transient\n" w_a w_t;
    `Ok exit_ok

(* ------------------------------------------------------------------ *)
(* batch supervision: hidden worker mode + the batch front end         *)
(* ------------------------------------------------------------------ *)

module Journal = Ser_jobs.Journal
module Supervisor = Ser_jobs.Supervisor
module Shard = Ser_jobs.Shard
module Merge = Ser_jobs.Merge

(* The worker half of the supervisor protocol: run one analysis in
   this (child) process and emit exactly one JSON document on stdout —
   {"ok":true,"result":...} or {"ok":false,"diag":...} plus a classed
   exit code. [--fault] is test-only injection used by the fault
   harness and CI to exercise the supervisor's failure taxonomy. *)
let worker_attempt () =
  match Sys.getenv_opt "SERTOOL_WORKER_ATTEMPT" with
  | Some s -> (match int_of_string_opt s with Some n -> n | None -> 1)
  | None -> 1

let apply_worker_fault fault =
  let crash signal = Unix.kill (Unix.getpid ()) signal in
  match fault with
  | None -> ()
  | Some "hang" ->
    while true do
      Unix.sleepf 3600.
    done
  | Some "crash" -> crash Sys.sigsegv
  | Some "oom" ->
    (* stand-in for the OOM killer: die by uncatchable SIGKILL *)
    crash Sys.sigkill
  | Some "garbage" ->
    print_string "%% this is not the worker protocol %%\n";
    exit 0
  | Some f when String.length f > 5 && String.sub f 0 5 = "exit:" ->
    exit
      (match int_of_string_opt (String.sub f 5 (String.length f - 5)) with
      | Some n -> n
      | None -> 1)
  | Some f when String.length f > 6 && String.sub f 0 6 = "flaky:" ->
    (* transient: crash on attempts below N, succeed afterwards — the
       path that proves retry-with-backoff recovers a job *)
    let n =
      match int_of_string_opt (String.sub f 6 (String.length f - 6)) with
      | Some n -> n
      | None -> 2
    in
    if worker_attempt () < n then crash Sys.sigsegv
  | Some f when String.length f > 6 && String.sub f 0 6 = "sleep:" -> (
    (* non-destructive delay, for deadline/overload scenarios *)
    match float_of_string_opt (String.sub f 6 (String.length f - 6)) with
    | Some ms when ms >= 0. -> Unix.sleepf (ms /. 1000.)
    | _ ->
      prerr_endline ("sertool worker: unparseable fault " ^ f);
      exit exit_input)
  | Some other ->
    prerr_endline ("sertool worker: unknown fault " ^ other);
    exit exit_input

(* The worker body is just [Handlers.run] over a canonical request.
   Two ways in: the batch flags (--cmd/--vectors/--evals, CIRCUIT), or
   --req-file pointing at a spooled request JSON — how the serve daemon
   ships arbitrary requests (including inline netlists) to an isolated
   child. *)
let worker_request spec cmd vectors evals req_file =
  match req_file with
  | Some path ->
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Ser_util.Json.of_string s with
    | Error msg ->
      failwith (Printf.sprintf "unreadable request file %s: %s" path msg)
    | Ok j -> or_diag (Request.of_json j))
  | None ->
    let spec =
      match spec with
      | Some s -> s
      | None -> failwith "worker needs a CIRCUIT argument or --req-file"
    in
    let op =
      match Request.op_of_string cmd with
      | Some op -> op
      | None -> failwith (Printf.sprintf "unknown worker command %S" cmd)
    in
    Request.make ~vectors ~evals ~greedy:1 op (Request.Spec spec)

let emit_worker_doc doc =
  print_string (Ser_util.Json.to_string ~indent:false doc);
  print_newline ()

let worker_cmd spec cmd vectors evals fault req_file =
  match
    Ser_util.Diag.guard ~subsystem:"worker" (fun () ->
        worker_request spec cmd vectors evals req_file)
  with
  | Error d ->
    emit_worker_doc
      (Ser_util.Json.Obj
         [
           ("ok", Ser_util.Json.Bool false);
           ("diag", Ser_util.Diag.to_json d);
         ]);
    `Ok (exit_code_of_diag d)
  | Ok req -> (
    (* --fault wins over the request's fault field (batch manifests
       pass --fault; serve spools it inside the request) *)
    apply_worker_fault
      (match fault with Some _ -> fault | None -> req.Request.fault);
    match Handlers.run req with
    | Ok result ->
      emit_worker_doc
        (Ser_util.Json.Obj
           [ ("ok", Ser_util.Json.Bool true); ("result", result) ]);
      `Ok exit_ok
    | Error d ->
      emit_worker_doc
        (Ser_util.Json.Obj
           [
             ("ok", Ser_util.Json.Bool false);
             ("diag", Ser_util.Diag.to_json d);
           ]);
      `Ok (exit_code_of_diag d))

(* ------------------------------------------------------------------ *)
(* the persistent analysis service and its client                      *)
(* ------------------------------------------------------------------ *)

module Server = Ser_serve.Server
module Client = Ser_serve.Client

let parse_tcp spec =
  match String.rindex_opt spec ':' with
  | Some i -> (
    let host = String.sub spec 0 i in
    let port = String.sub spec (i + 1) (String.length spec - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 ->
      (Server.Tcp ((if host = "" then "127.0.0.1" else host), p))
    | _ -> failwith (Printf.sprintf "bad tcp address %S (want HOST:PORT)" spec))
  | None -> failwith (Printf.sprintf "bad tcp address %S (want HOST:PORT)" spec)

let serve_cmd jobs obs socket tcp max_queue max_frame deadline cache_dir
    cache_entries pool_entries worker_timeout worker_retries spool_dir
    no_isolate quiet =
  wrap @@ fun () ->
  apply_jobs jobs;
  apply_obs obs;
  let addrs =
    Server.Unix_sock socket
    :: (match tcp with Some spec -> [ parse_tcp spec ] | None -> [])
  in
  let cfg =
    {
      (Server.default ~socket) with
      Server.addrs;
      max_queue;
      max_frame;
      default_deadline_s = deadline;
      cache_dir;
      cache_entries;
      pool_entries;
      worker_timeout_s = worker_timeout;
      worker_retries;
      spool_dir;
      isolate_optimize = not no_isolate;
      verbose = not quiet;
    }
  in
  Printf.printf "sertool serve: pid %d listening on %s\n%!" (Unix.getpid ())
    (String.concat ", "
       (List.map
          (function
            | Server.Unix_sock p -> "unix:" ^ p
            | Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p)
          addrs));
  (match Server.run cfg with
  | Ok () ->
    print_endline "sertool serve: drained cleanly";
    `Ok exit_ok
  | Error d ->
    render_diag d;
    `Ok (exit_code_of_diag d))

let reject_exit = function
  | Ser_serve.Wire.Bad_request -> exit_input
  | Ser_serve.Wire.Deadline_exceeded -> exit_budget
  | Ser_serve.Wire.Overloaded | Ser_serve.Wire.Worker_failed
  | Ser_serve.Wire.Shutting_down | Ser_serve.Wire.Internal ->
    exit_numerical

let client_cmd socket tcp op spec inline id backend vectors charge top evals
    greedy clock q_slope deadline isolate fault connect_timeout timeout
    retries retry_rejected repeat =
  wrap @@ fun () ->
  if repeat < 1 then failwith "--repeat must be >= 1";
  let addr =
    match tcp with Some s -> parse_tcp s | None -> Server.Unix_sock socket
  in
  let opts =
    {
      Client.default_opts with
      Client.connect_timeout_s = connect_timeout;
      request_timeout_s = timeout;
      retries;
    }
  in
  let request =
    match op with
    | "health" | "stats" -> Ser_util.Json.Obj [ ("op", Ser_util.Json.Str op) ]
    | _ ->
      let opv =
        match Request.op_of_string op with
        | Some o -> o
        | None ->
          failwith
            (Printf.sprintf
               "unknown op %S (want analyze, optimize, rate, odc, health)" op)
      in
      let spec =
        match spec with
        | Some s -> s
        | None -> failwith "this op needs a CIRCUIT argument"
      in
      let source =
        if inline then begin
          (* ship the netlist text inside the request: the daemon never
             touches this client's filesystem *)
          let text =
            if Sys.file_exists spec then begin
              let ic = open_in_bin spec in
              let s = really_input_string ic (in_channel_length ic) in
              close_in ic;
              s
            end
            else Ser_netlist.Bench_format.to_string (load_circuit spec)
          in
          Request.Inline_bench text
        end
        else Request.Spec spec
      in
      Request.to_json
        (Request.make ?id ?backend ?vectors ?charge ?top ?evals ?greedy
           ?clock ?q_slope ?deadline_s:deadline ?isolate ?fault opv source)
  in
  (* --repeat > 1 keeps one framed connection alive across the whole
     loop (the daemon already serves many requests per connection);
     conn_call transparently re-dials and retries if it drops *)
  let conn =
    if repeat > 1 then Some (Client.conn ~opts addr) else None
  in
  let call request =
    match conn with
    | Some c -> Client.conn_call c request
    | None ->
      if retry_rejected then Client.call_retrying ~opts addr request
      else Client.call ~opts addr request
  in
  let rec iterate i last =
    if i >= repeat then last
    else
      match call request with
      | Error _ as e -> e
      | Ok r ->
        if repeat > 1 then
          Printf.eprintf "sertool client: [%d/%d] %s in %.3fs%s\n" (i + 1)
            repeat
            (match r.Ser_serve.Wire.r_status with
            | Ser_serve.Wire.Ok_payload _ -> "ok"
            | Ser_serve.Wire.Rejected (reject, _, _) ->
              Ser_serve.Wire.reject_to_string reject)
            r.Ser_serve.Wire.r_elapsed_s
            (if r.Ser_serve.Wire.r_cache_hit then " (cache hit)" else "");
        iterate (i + 1) (Ok r)
  in
  let result = iterate 0 (Error (Ser_util.Diag.make ~subsystem:"serve" "no attempt")) in
  (match conn with Some c -> Client.conn_close c | None -> ());
  match result with
  | Error d ->
    render_diag d;
    `Ok exit_numerical
  | Ok r -> (
    match r.Ser_serve.Wire.r_status with
    | Ser_serve.Wire.Ok_payload payload ->
      print_endline (Ser_util.Json.to_string ~indent:true payload);
      Printf.eprintf
        "sertool client: ok in %.3fs%s%s%s\n" r.Ser_serve.Wire.r_elapsed_s
        (if r.Ser_serve.Wire.r_cache_hit then " (cache hit)" else "")
        (if r.Ser_serve.Wire.r_warm then " (warm)" else "")
        (if r.Ser_serve.Wire.r_replayed then " (replayed)" else "");
      `Ok exit_ok
    | Ser_serve.Wire.Rejected (reject, msg, diag) ->
      print_endline
        (Ser_util.Json.to_string ~indent:true
           (Ser_util.Json.Obj
              [
                ( "error",
                  Ser_util.Json.Str (Ser_serve.Wire.reject_to_string reject)
                );
                ("diag", diag);
              ]));
      Printf.eprintf "sertool client: rejected (%s): %s\n"
        (Ser_serve.Wire.reject_to_string reject)
        msg;
      `Ok (reject_exit reject))

(* Manifest: one job per line, "SPEC [fault=F]"; '#' comments and
   blank lines ignored. SPEC is a .bench/.v path or a benchmark name,
   exactly as for single-run commands. *)
let parse_manifest path =
  let ic =
    try open_in path
    with Sys_error msg ->
      raise
        (Ser_util.Diag.Diag_error
           (Ser_util.Diag.make ~subsystem:"jobs"
              ~context:[ Ser_util.Diag.file path ]
              msg))
  in
  let lines = ref [] in
  (try
     let n = ref 0 in
     while true do
       incr n;
       lines := (!n, input_line ic) :: !lines
     done
   with End_of_file -> close_in ic);
  let entries =
    List.rev !lines
    |> List.filter_map (fun (n, raw) ->
           let line =
             match String.index_opt raw '#' with
             | Some h -> String.sub raw 0 h
             | None -> raw
           in
           let line = String.trim line in
           if line = "" then None
           else
             match String.split_on_char ' ' line |> List.filter (( <> ) "") with
             | [ spec ] -> Some (n, spec, None)
             | [ spec; opt ] when String.length opt > 6
                                  && String.sub opt 0 6 = "fault=" ->
               let f = String.sub opt 6 (String.length opt - 6) in
               let known =
                 match f with
                 | "hang" | "crash" | "oom" | "garbage" -> true
                 | _ ->
                   (String.length f > 5 && String.sub f 0 5 = "exit:")
                   || (String.length f > 6 && String.sub f 0 6 = "flaky:")
               in
               (* catch typos here, with a line number, instead of
                  letting every attempt die in the worker as a
                  retried-then-degraded mystery *)
               if not known then
                 raise
                   (Ser_util.Diag.Diag_error
                      (Ser_util.Diag.make ~subsystem:"jobs"
                         ~context:
                           [ Ser_util.Diag.file path; Ser_util.Diag.line n ]
                         (Printf.sprintf
                            "unknown fault %S (known: hang, crash, oom, \
                             garbage, exit:N, flaky:N)"
                            f)));
               Some (n, spec, Some f)
             | _ ->
               raise
                 (Ser_util.Diag.Diag_error
                    (Ser_util.Diag.make ~subsystem:"jobs"
                       ~context:[ Ser_util.Diag.file path; Ser_util.Diag.line n ]
                       (Printf.sprintf "malformed manifest line %S" raw))))
  in
  if entries = [] then
    raise
      (Ser_util.Diag.Diag_error
         (Ser_util.Diag.make ~subsystem:"jobs"
            ~context:[ Ser_util.Diag.file path ]
            "manifest lists no jobs"));
  (* job ids must be unique: suffix duplicated specs with #k *)
  let seen = Hashtbl.create 16 in
  List.map
    (fun (_, spec, fault) ->
      let k =
        match Hashtbl.find_opt seen spec with Some k -> k + 1 | None -> 0
      in
      Hashtbl.replace seen spec k;
      let id = if k = 0 then spec else Printf.sprintf "%s#%d" spec k in
      (id, spec, fault))
    entries

let print_batch_event ev =
  match ev with
  | Journal.Started { job; attempt } ->
    Printf.printf "[%s] started (attempt %d)\n%!" job attempt
  | Journal.Attempt_failed { job; attempt; cls; detail; backoff_s } ->
    Printf.printf "[%s] attempt %d failed (%s: %s)%s\n%!" job attempt cls detail
      (if backoff_s > 0. then Printf.sprintf "; retrying in %.2f s" backoff_s
       else "")
  | Journal.Interrupted { job; attempt } ->
    Printf.printf "[%s] interrupted during attempt %d (will re-run on \
                   --resume)\n%!"
      job attempt
  | Journal.Done { job; status; digest; _ } ->
    Printf.printf "[%s] done: %s (digest %s)\n%!" job status
      (String.sub digest 0 (min 12 (String.length digest)))
  | Journal.Batch_start _ | Journal.Batch_end _ | Journal.Enqueued _ -> ()

(* Per-job observability files under --obs-dir: the supervisor hands
   each worker its own SERTOOL_TRACE/SERTOOL_METRICS paths through the
   environment, and the results document references them. Job ids may
   embed '/' (path specs) — flatten for the filename. *)
let obs_job_file dir id ext =
  let flat = String.map (fun ch -> if ch = '/' then '_' else ch) id in
  Filename.concat dir (flat ^ ext)

let obs_job_env obs_dir id =
  match obs_dir with
  | None -> []
  | Some dir ->
    [
      ("SERTOOL_TRACE", obs_job_file dir id ".trace.json");
      ("SERTOOL_METRICS", obs_job_file dir id ".metrics.json");
    ]

let obs_results_field obs_dir entries =
  match obs_dir with
  | None -> []
  | Some dir ->
    [
      ( "obs",
        Ser_util.Json.Obj
          [
            ("dir", Ser_util.Json.Str dir);
            ( "jobs",
              Ser_util.Json.Obj
                (List.map
                   (fun (id, _, _) ->
                     ( id,
                       Ser_util.Json.Obj
                         [
                           ( "trace",
                             Ser_util.Json.Str (obs_job_file dir id ".trace.json") );
                           ( "metrics",
                             Ser_util.Json.Str (obs_job_file dir id ".metrics.json")
                           );
                         ] ))
                   entries) );
          ] );
    ]

let batch_cmd manifest cmd vectors evals journal_path resume shard parallel
    job_timeout grace retries backoff results obs obs_dir =
  wrap @@ fun () ->
  apply_obs obs;
  (match obs_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | Some _ | None -> ());
  let shard =
    match shard with
    | None -> None
    | Some s -> (
      match Shard.of_string s with
      | Ok t -> Some t
      | Error msg -> failwith msg)
  in
  let entries = parse_manifest manifest in
  (* the shard's job set is a pure function of (job id, shard count):
     every worker recomputes it from the same manifest, no coordinator *)
  let entries =
    match shard with
    | None -> entries
    | Some t -> Shard.select t ~id:(fun (id, _, _) -> id) entries
  in
  let journal_path =
    match (journal_path, shard) with
    | Some p, _ -> p
    | None, None -> manifest ^ ".journal"
    | None, Some t ->
      Printf.sprintf "%s.shard-%d-of-%d.journal" manifest t.Shard.index
        t.Shard.count
  in
  let resume_state =
    if resume then
      if Sys.file_exists journal_path then Some (or_diag (Journal.replay journal_path))
      else None
    else begin
      if
        Sys.file_exists journal_path
        && (Unix.stat journal_path).Unix.st_size > 0
      then
        failwith
          (Printf.sprintf
             "journal %s already exists; pass --resume to continue that \
              batch or remove it to start over"
             journal_path);
      None
    end
  in
  let self = Sys.executable_name in
  let jobs =
    List.map
      (fun (id, spec, fault) ->
        let argv =
          [ self; "worker"; "--cmd"; cmd; "--vectors"; string_of_int vectors;
            "--evals"; string_of_int evals ]
          @ (match fault with Some f -> [ "--fault"; f ] | None -> [])
          @ [ spec ]
        in
        Supervisor.job ~env:(obs_job_env obs_dir id) ~id (Array.of_list argv))
      entries
  in
  let cfg =
    {
      Supervisor.default_config with
      Supervisor.parallel;
      timeout_s = job_timeout;
      grace_s = grace;
      retries;
      backoff_base_s = backoff;
    }
  in
  let journal = or_diag (Journal.create ?resume:resume_state journal_path) in
  let summary =
    Fun.protect
      ~finally:(fun () -> Journal.close journal)
      (fun () ->
        Supervisor.with_signal_drain (fun stop ->
            or_diag
              (Supervisor.run ~stop ~on_event:print_batch_event
                 ?shard:
                   (Option.map
                      (fun t -> (t.Shard.index, t.Shard.count))
                      shard)
                 cfg ~journal ?resume:resume_state jobs)))
  in
  Printf.printf
    "batch summary: ok=%d failed=%d degraded=%d skipped=%d interrupted=%d%s\n"
    summary.Supervisor.ok summary.Supervisor.failed summary.Supervisor.degraded
    summary.Supervisor.skipped summary.Supervisor.interrupted
    (if summary.Supervisor.drained then " (drained: interrupted by operator)"
     else "");
  (match results with
  | None -> ()
  | Some path ->
    (* derived from the journal alone, so an interrupted-then-resumed
       batch renders bit-identically to an uninterrupted one *)
    let st = or_diag (Journal.replay journal_path) in
    let doc =
      match Journal.final_results_json st with
      | Ser_util.Json.Obj fields ->
        Ser_util.Json.Obj (fields @ obs_results_field obs_dir entries)
      | other -> other
    in
    let oc = open_out path in
    output_string oc (Ser_util.Json.to_string doc);
    output_string oc "\n";
    close_out oc;
    Printf.printf "wrote %s\n" path);
  `Ok exit_ok

(* Fold N shard journals back into the single-host results document.
   Robustness contract: torn tails are tolerated, gaps become a retry
   manifest plus a degraded document, digest conflicts are a typed
   integrity error (exit 5) — never silent corruption. *)
let batch_merge_cmd journals manifest shards results retry_path trace_ins
    merged_trace obs =
  wrap @@ fun () ->
  apply_obs obs;
  if journals = [] then failwith "batch merge needs at least one JOURNAL";
  let sources = or_diag (Merge.load journals) in
  (* shard count: explicit flag, else what the journals themselves
     declare, else one journal = one shard *)
  let shards =
    match shards with
    | Some n when n >= 1 -> Some n
    | Some n -> failwith (Printf.sprintf "--shards must be >= 1 (got %d)" n)
    | None -> (
      match
        List.filter_map
          (fun s -> Option.map snd s.Merge.src_state.Journal.shard)
          sources
      with
      | n :: _ -> Some n
      | [] -> None)
  in
  let manifest_entries = Option.map parse_manifest manifest in
  let expect =
    match manifest_entries with
    | None -> None
    | Some entries ->
      Some
        {
          Merge.e_jobs = List.map (fun (id, _, _) -> id) entries;
          e_shards =
            (match shards with Some n -> n | None -> List.length journals);
        }
  in
  let report = Merge.merge ?expect sources in
  match Merge.integrity_error report with
  | Some d ->
    render_diag d;
    `Ok exit_integrity
  | None ->
    List.iter
      (fun (job, path) ->
        Printf.eprintf
          "merge: note: %s delivered job %S it does not own under the \
           shard assignment\n"
          path job)
      report.Merge.foreign;
    let doc = Merge.results_json report in
    (match results with
    | Some path ->
      let oc = open_out path in
      output_string oc (Ser_util.Json.to_string doc);
      output_string oc "\n";
      close_out oc;
      Printf.printf "wrote %s\n" path
    | None -> print_endline (Ser_util.Json.to_string ~indent:true doc));
    (* a degraded merge emits the exact manifest lines to re-run *)
    (match (retry_path, manifest_entries) with
    | Some path, Some entries ->
      let missing = Merge.retry_manifest_ids report in
      if missing <> [] then begin
        let oc = open_out path in
        List.iter
          (fun (id, spec, fault) ->
            if List.mem id missing then
              output_string oc
                (match fault with
                | Some f -> Printf.sprintf "%s fault=%s\n" spec f
                | None -> spec ^ "\n"))
          entries;
        close_out oc;
        Printf.printf "wrote retry manifest %s (%d jobs)\n" path
          (List.length missing)
      end
    | Some _, None ->
      failwith "--retry-manifest needs --manifest to resolve job specs"
    | None, _ -> ());
    (* merged multi-worker timeline: shard i's domains land in tid band
       i*1000 so N workers render side by side in Perfetto *)
    (match merged_trace with
    | None -> ()
    | Some path ->
      let docs =
        List.mapi
          (fun i p ->
            let ic = open_in_bin p in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            match Ser_util.Json.of_string s with
            | Ok j -> (i, j)
            | Error msg ->
              failwith (Printf.sprintf "unreadable trace %s: %s" p msg))
          trace_ins
      in
      if docs = [] then
        failwith "--merged-trace needs at least one --trace-in FILE";
      (match
         Ser_util.Json.to_file path (Obs.Trace.merge_documents docs)
       with
      | Ok () -> Printf.printf "wrote merged trace %s\n" path
      | Error msg -> failwith msg));
    Printf.printf
      "merge summary: shards=%d jobs=%d torn_tails=%d overlaps=%d \
       missing_jobs=%d missing_shards=%d%s\n"
      report.Merge.sources
      (List.length report.Merge.finals)
      report.Merge.torn_tails
      (List.length report.Merge.overlaps)
      (List.length report.Merge.missing_jobs)
      (List.length report.Merge.missing_shards)
      (if report.Merge.degraded then " (degraded: rerun the retry manifest \
                                       or the missing shards and re-merge)"
       else "");
    `Ok exit_ok

(* Self/total-time table from a Chrome trace, so profiling a sweep
   does not require loading Perfetto. *)
(* Fleet progress without merging: replay each shard journal read-only
   and tabulate done/failed/degraded/pending. Safe to run while the
   shards are still being written — replay tolerates a torn tail. *)
let batch_status_cmd journals =
  wrap @@ fun () ->
  if journals = [] then
    failwith "batch status needs at least one journal file";
  let module J = Ser_jobs.Journal in
  let states = List.map (fun p -> (p, or_diag (J.replay p))) journals in
  let count (st : J.state) status =
    List.length
      (List.filter (fun (_, f) -> f.J.status = status) st.J.finals)
  in
  let tbl =
    Ser_util.Ascii_table.create
      ~aligns:[ Ser_util.Ascii_table.Left; Ser_util.Ascii_table.Left ]
      [ "journal"; "shard"; "jobs"; "ok"; "failed"; "degraded"; "pending";
        "note" ]
  in
  let t_jobs = ref 0 and t_ok = ref 0 and t_failed = ref 0 in
  let t_degraded = ref 0 and t_pending = ref 0 in
  List.iter
    (fun (path, (st : J.state)) ->
      let jobs = List.length st.J.jobs in
      let ok = count st "ok" in
      let failed = count st "failed" in
      let degraded = count st "degraded" in
      let pending = jobs - List.length st.J.finals in
      t_jobs := !t_jobs + jobs;
      t_ok := !t_ok + ok;
      t_failed := !t_failed + failed;
      t_degraded := !t_degraded + degraded;
      t_pending := !t_pending + pending;
      Ser_util.Ascii_table.add_row tbl
        [
          Filename.basename path;
          (match st.J.shard with
          | Some (i, n) -> Printf.sprintf "%d/%d" i n
          | None -> "-");
          string_of_int jobs;
          string_of_int ok;
          string_of_int failed;
          string_of_int degraded;
          string_of_int pending;
          (if st.J.torn_tail then "torn tail" else "");
        ])
    states;
  Ser_util.Ascii_table.print tbl;
  Printf.printf "fleet: %d/%d jobs done (%d ok, %d failed, %d degraded), %d pending\n"
    (!t_ok + !t_failed + !t_degraded)
    !t_jobs !t_ok !t_failed !t_degraded !t_pending;
  `Ok exit_ok

let report_cmd trace_path top =
  wrap @@ fun () ->
  let doc =
    let ic =
      try open_in_bin trace_path
      with Sys_error msg -> failwith msg
    in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Ser_util.Json.of_string s with
    | Ok j -> j
    | Error msg ->
      failwith (Printf.sprintf "unreadable trace %s: %s" trace_path msg)
  in
  let rows = Obs.Trace.tabulate doc in
  if rows = [] then print_endline "trace holds no spans"
  else begin
    let shown = if top <= 0 then rows else List.filteri (fun i _ -> i < top) rows in
    let name_w =
      List.fold_left
        (fun w (r : Obs.Trace.row) -> max w (String.length r.Obs.Trace.row_name))
        4 shown
    in
    let grand_self =
      List.fold_left
        (fun acc (r : Obs.Trace.row) -> acc +. r.Obs.Trace.row_self_us)
        0. rows
    in
    Printf.printf "%-*s %10s %12s %12s %7s\n" name_w "span" "count"
      "total_ms" "self_ms" "self%";
    List.iter
      (fun (r : Obs.Trace.row) ->
        Printf.printf "%-*s %10d %12.3f %12.3f %6.1f%%\n" name_w
          r.Obs.Trace.row_name r.Obs.Trace.row_count
          (r.Obs.Trace.row_total_us /. 1000.)
          (r.Obs.Trace.row_self_us /. 1000.)
          (if grand_self > 0. then 100. *. r.Obs.Trace.row_self_us /. grand_self
           else 0.))
      shown;
    if top > 0 && List.length rows > top then
      Printf.printf "... %d more spans (raise --top)\n"
        (List.length rows - top)
  end;
  `Ok exit_ok

(* ------------------------------------------------------------------ *)

open Cmdliner

let circuit_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT"
         ~doc:"Benchmark name (c17, c432, ...) or .bench file path.")

let vdds_arg =
  Arg.(value & opt (list float) [] & info [ "vdds" ] ~docv:"V,..."
         ~doc:"Supply-voltage menu (default 0.8,1.0,1.2).")

let vths_arg =
  Arg.(value & opt (list float) [] & info [ "vths" ] ~docv:"V,..."
         ~doc:"Threshold-voltage menu (default 0.1,0.2,0.3).")

let jobs_arg =
  Arg.(value & opt int (-1) & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for parallel sections: 0 autodetects from the \
               machine, 1 forces sequential execution, N>1 pins the pool \
               width. Defaults to the SERTOOL_JOBS environment variable, \
               else autodetection. Results are bit-identical for every \
               setting.")

let obs_args =
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a Chrome trace-event timeline of the run and write \
                 it to FILE at exit (open with Perfetto or chrome://tracing).")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write a JSON snapshot of all internal counters, gauges and \
                 histograms to FILE at exit.")
  in
  let sample =
    Arg.(value & opt (some int) None & info [ "trace-sample" ] ~docv:"N"
           ~doc:"Keep only every N-th trace span (1 = keep all, the \
                 default); dropped spans are counted in the \
                 trace.sampled_drops metric. Overrides the \
                 SERTOOL_TRACE_SAMPLE environment variable.")
  in
  Term.(const (fun t m s -> (t, m, s)) $ trace $ metrics $ sample)

let obs_dir_arg =
  Arg.(value & opt (some string) None & info [ "obs-dir" ] ~docv:"DIR"
         ~doc:"Collect per-job trace and metrics files from batch workers \
               into DIR (sets SERTOOL_TRACE/SERTOOL_METRICS in each child); \
               the results JSON references them under an \"obs\" field.")

let info_t =
  Cmd.v (Cmd.info "info" ~doc:"Print circuit statistics")
    Term.(ret (const info_cmd $ circuit_arg))

let generate_t =
  let bench_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Benchmark name.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let format =
    Arg.(value & opt string "bench" & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: bench, verilog or dot.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to a file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Emit a benchmark circuit (.bench, Verilog or Graphviz)")
    Term.(ret (const generate_cmd $ bench_name $ seed $ format $ output))

let backend_arg =
  Arg.(value
       & opt (enum [ ("aserta", "aserta"); ("serpp", "serpp") ]) "aserta"
       & info [ "backend" ] ~docv:"NAME"
           ~doc:"SER estimator: aserta (Monte-Carlo expected widths, the \
                 paper's method) or serpp (single-pass \
                 propagation-probability profiles; vectorless, 15-40x \
                 faster, upper-bound tendency under reconvergence).")

let analyze_t =
  let vectors =
    Arg.(value & opt int 10_000 & info [ "vectors" ] ~doc:"Random vectors for P_ij.")
  in
  let charge =
    Arg.(value & opt float 16. & info [ "charge" ] ~doc:"Injected charge, fC.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Softest gates to list.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Export the full report as JSON.")
  in
  let dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Export the circuit as Graphviz with unreliability heat.")
  in
  let odc =
    Arg.(value & opt (some string) None & info [ "odc" ] ~docv:"FILE"
           ~doc:"ODC report (written by 'sertool odc -o') whose \
                 provably-masked fault sites are skipped during the \
                 Monte-Carlo P_ij pass. Totals and per-gate values stay \
                 bit-identical; the skipped sites are counted in the \
                 aserta.odc_pruned metric. ASERTA backend only, and the \
                 report's digest must match this netlist.")
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Soft-error tolerance analysis")
    Term.(ret (const analyze_cmd $ jobs_arg $ obs_args $ backend_arg
               $ circuit_arg $ vectors $ charge $ top $ vdds_arg $ vths_arg
               $ odc $ json $ dot))

let odc_t =
  let mode =
    Arg.(value
         & opt (enum [ ("exhaustive", "exhaustive"); ("sampled", "sampled") ])
             "exhaustive"
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"exhaustive (sampled screen plus support-limited \
                   exhaustive proofs for zero-detection sites, the \
                   default) or sampled (screen only, no proofs).")
  in
  let vectors =
    Arg.(value & opt int 4000 & info [ "vectors" ]
           ~doc:"Random vectors for the sampled screen.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Screen RNG seed.")
  in
  let threshold =
    Arg.(value & opt float 0.05 & info [ "threshold" ] ~docv:"T"
           ~doc:"Observability cutoff in [0, 1] for the low-observability \
                 site count of the summary (and of downstream \
                 ODC-seeded optimization).")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the deterministic JSON report — the file that \
                 'analyze --odc' and 'optimize --odc' consume.")
  in
  Cmd.v
    (Cmd.info "odc"
       ~doc:"Discover observability don't-cares by bit-parallel error \
             injection: classify every gate as provably masked \
             (exhaustive, no primary-output difference), observed, or \
             sampled-unobserved with a per-gate observability bound")
    Term.(ret (const odc_cmd $ jobs_arg $ obs_args $ circuit_arg $ mode
               $ vectors $ seed $ threshold $ output))

let optimize_t =
  let vectors =
    Arg.(value & opt int 4000 & info [ "vectors" ] ~doc:"Random vectors for P_ij.")
  in
  let evals =
    Arg.(value & opt int 120 & info [ "evals" ] ~doc:"Nullspace-search cost evaluations.")
  in
  let greedy =
    Arg.(value & opt int 2 & info [ "greedy" ] ~doc:"Greedy refinement passes.")
  in
  let eval_tier =
    Arg.(value
         & opt (enum [ ("exact", "exact"); ("serpp", "serpp") ]) "exact"
         & info [ "eval-tier" ] ~docv:"TIER"
             ~doc:"Greedy-menu evaluation economy: exact measures every \
                   candidate; serpp ranks each menu with the cheap \
                   propagation-probability estimate and spends exact \
                   evaluations only on the top K (see --tier-k). The \
                   accept decision always compares exact costs; saved \
                   evaluations are counted in the \
                   sertopt.exact_evals_saved metric.")
  in
  let tier_k =
    Arg.(value & opt int 6 & info [ "tier-k" ] ~docv:"K"
           ~doc:"Exact evaluations kept per greedy menu under --eval-tier \
                 serpp.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Dump the optimized cell assignment.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Export the optimization report as JSON.")
  in
  let budget_evals =
    Arg.(value & opt (some int) None & info [ "budget-evals" ] ~docv:"N"
           ~doc:"Hard cap on cost evaluations; the best-so-far incumbent is \
                 returned (flagged degraded) when it is hit.")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Wall-clock deadline; the best-so-far incumbent is returned \
                 (flagged degraded) when it expires.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Resume from FILE if it exists, and write the final \
                 assignment back to it (JSON incumbent).")
  in
  let odc =
    Arg.(value & opt (some string) None & info [ "odc" ] ~docv:"FILE"
           ~doc:"ODC report (written by 'sertool odc -o') seeding an \
                 extra downsizing stage: gates with observability at most \
                 0.05 are offered their smaller variants, measured with \
                 the exact engine (acceptance never trusts the report; a \
                 wrong bound can only waste evaluations). Proposed and \
                 accepted moves land in the sertopt.odc_moves / \
                 sertopt.odc_accepts metrics.")
  in
  Cmd.v (Cmd.info "optimize" ~doc:"SERTOPT soft-error tolerance optimization")
    Term.(ret (const optimize_cmd $ jobs_arg $ obs_args $ circuit_arg $ vectors
               $ evals $ greedy $ eval_tier $ tier_k $ vdds_arg $ vths_arg
               $ budget_evals $ timeout $ checkpoint $ odc $ output $ json))

let export_deck_t =
  let strike =
    Arg.(required & opt (some string) None & info [ "strike" ] ~docv:"GATE"
           ~doc:"Name of the struck gate.")
  in
  let vector =
    Arg.(value & opt (some string) None & info [ "vector" ] ~docv:"BITS"
           ~doc:"Input vector as a 0/1 string (random if omitted).")
  in
  let charge =
    Arg.(value & opt float 16. & info [ "charge" ] ~doc:"Injected charge, fC.")
  in
  let output =
    Arg.(value & opt string "strike.sp" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output SPICE deck.")
  in
  Cmd.v
    (Cmd.info "export-deck"
       ~doc:"Emit a standalone SPICE deck for one strike scenario \
             (cross-validation in ngspice/HSPICE)")
    Term.(ret (const export_deck_cmd $ circuit_arg $ strike $ vector $ charge
               $ output))

let characterize_t =
  let kind =
    Arg.(value & opt string "NAND" & info [ "kind" ] ~doc:"Gate kind.")
  in
  let fanin = Arg.(value & opt int 2 & info [ "fanin" ] ~doc:"Fan-in.") in
  let size = Arg.(value & opt float 1.0 & info [ "size" ] ~doc:"Size multiplier.") in
  let length = Arg.(value & opt float 70. & info [ "length" ] ~doc:"Channel length, nm.") in
  let vdd = Arg.(value & opt float 1.0 & info [ "vdd" ] ~doc:"Supply, V.") in
  let vth = Arg.(value & opt float 0.2 & info [ "vth" ] ~doc:"Threshold, V.") in
  Cmd.v (Cmd.info "characterize" ~doc:"Electrically characterise one cell")
    Term.(ret (const characterize_cmd $ kind $ fanin $ size $ length $ vdd $ vth))

let rate_t =
  let vectors =
    Arg.(value & opt int 4000 & info [ "vectors" ] ~doc:"Random vectors for P_ij.")
  in
  let clock =
    Arg.(value & opt (some float) None & info [ "clock" ] ~docv:"PS"
           ~doc:"Clock period (default 1.2x critical delay).")
  in
  let q_slope =
    Arg.(value & opt float 6. & info [ "q-slope" ]
           ~doc:"Charge-collection slope of the spectrum, fC.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Contributors to list.")
  in
  Cmd.v
    (Cmd.info "rate"
       ~doc:"Soft-error rate (FIT) over a particle charge spectrum")
    Term.(ret (const rate_cmd $ jobs_arg $ obs_args $ circuit_arg $ vectors
               $ clock $ q_slope $ top))

let harden_t =
  let method_ =
    Arg.(value & opt string "tmr" & info [ "method" ] ~docv:"M"
           ~doc:"Hardening transform: tmr, ptmr (partial, softest gates) or ced.")
  in
  let fraction =
    Arg.(value & opt float 0.2 & info [ "fraction" ]
           ~doc:"Gate fraction protected by ptmr.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the hardened netlist (.bench) to a file.")
  in
  Cmd.v
    (Cmd.info "harden"
       ~doc:"Apply a classical structural hardening transform (TMR, partial \
             TMR, duplication+CED)")
    Term.(ret (const harden_cmd $ jobs_arg $ circuit_arg $ method_ $ fraction
               $ output))

let pipeline_t =
  let stages =
    Arg.(value & opt int 2 & info [ "stages" ] ~doc:"Pipeline depth.")
  in
  let clock =
    Arg.(value & opt (some float) None & info [ "clock" ] ~docv:"PS"
           ~doc:"Clock period in ps (default: minimum feasible).")
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:"Slice a circuit into pipeline stages and report the system SER")
    Term.(ret (const pipeline_cmd $ jobs_arg $ circuit_arg $ stages $ clock))

let timing_t =
  let n_paths =
    Arg.(value & opt int 3 & info [ "paths" ] ~doc:"Worst paths to report.")
  in
  Cmd.v
    (Cmd.info "timing" ~doc:"Static timing report with the K worst paths")
    Term.(ret (const timing_cmd $ jobs_arg $ circuit_arg $ n_paths $ vdds_arg
               $ vths_arg))

let export_lib_t =
  let kind =
    Arg.(value & opt string "NAND" & info [ "kind" ] ~doc:"Gate kind.")
  in
  let fanin = Arg.(value & opt int 2 & info [ "fanin" ] ~doc:"Fan-in.") in
  let output =
    Arg.(value & opt string "ser70.lib" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output Liberty file.")
  in
  Cmd.v
    (Cmd.info "export-lib"
       ~doc:"Dump the characterised cell variants of one logic function \
             as a Liberty (.lib) file")
    Term.(ret (const export_lib_cmd $ kind $ fanin $ output))

let worker_t =
  let spec =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"CIRCUIT"
           ~doc:"Benchmark name or .bench file path (omit with --req-file).")
  in
  let cmd =
    Arg.(value & opt string "analyze" & info [ "cmd" ] ~docv:"CMD"
           ~doc:"Worker command: analyze, optimize, rate or odc.")
  in
  let vectors =
    Arg.(value & opt int 2000 & info [ "vectors" ] ~doc:"Random vectors for P_ij.")
  in
  let evals =
    Arg.(value & opt int 60 & info [ "evals" ] ~doc:"Optimizer cost evaluations.")
  in
  let fault =
    Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"F"
           ~doc:"Test-only fault injection: hang, crash, oom, garbage, \
                 exit:N, flaky:N (crash on attempts below N) or sleep:MS.")
  in
  let req_file =
    Arg.(value & opt (some string) None & info [ "req-file" ] ~docv:"FILE"
           ~doc:"Read the full request record (canonical JSON) from FILE \
                 instead of the flags; how the serve daemon dispatches \
                 isolated requests.")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"(internal) Run one job as a supervised child process and \
             emit the result as JSON on stdout")
    Term.(ret (const worker_cmd $ spec $ cmd $ vectors $ evals $ fault
               $ req_file))

let default_socket = "/tmp/sertool.sock"

let socket_arg =
  Arg.(value & opt string default_socket & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path.")

let tcp_arg =
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
         ~doc:"Also (serve) / instead (client) use a TCP endpoint.")

let serve_t =
  let max_queue =
    Arg.(value & opt int 16 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Admission-queue bound: one request beyond it is answered \
                 with a typed 'overloaded' rejection immediately \
                 (deterministic load shedding).")
  in
  let max_frame =
    Arg.(value & opt int Ser_serve.Frame.default_max_frame
         & info [ "max-frame" ] ~docv:"BYTES"
           ~doc:"Largest accepted request frame.")
  in
  let deadline =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Default per-request deadline for requests that carry none.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist the result cache to DIR/cache.json (atomic \
                 tmp+rename after every insert); a restarted daemon reloads \
                 it warm.")
  in
  let cache_entries =
    Arg.(value & opt int 256 & info [ "cache-entries" ] ~docv:"N"
           ~doc:"Result-cache LRU bound.")
  in
  let pool_entries =
    Arg.(value & opt int 4 & info [ "pool-entries" ] ~docv:"N"
           ~doc:"Warm incremental-handle pool LRU bound.")
  in
  let worker_timeout =
    Arg.(value & opt float 120. & info [ "worker-timeout" ] ~docv:"SECONDS"
           ~doc:"Watchdog per isolated-worker attempt.")
  in
  let worker_retries =
    Arg.(value & opt int 1 & info [ "worker-retries" ] ~docv:"N"
           ~doc:"Transient-failure retries per isolated request.")
  in
  let spool_dir =
    Arg.(value & opt (some string) None & info [ "spool-dir" ] ~docv:"DIR"
           ~doc:"Directory for request spool files and per-request journals \
                 (default: the system temp directory).")
  in
  let no_isolate =
    Arg.(value & flag & info [ "no-isolate-optimize" ]
           ~doc:"Run optimize requests inline instead of in an isolated \
                 worker process (faster, but a crashing evaluation then \
                 takes the daemon with it).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ]
           ~doc:"Suppress per-event lifecycle lines on stderr.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run a persistent analysis daemon: length-framed JSON requests \
             over a Unix (or TCP) socket, content-addressed result cache, \
             warm incremental handles, admission control with load \
             shedding, per-request deadlines, crash-contained isolated \
             workers and graceful drain on SIGTERM")
    Term.(ret (const serve_cmd $ jobs_arg $ obs_args $ socket_arg $ tcp_arg
               $ max_queue $ max_frame $ deadline $ cache_dir $ cache_entries
               $ pool_entries $ worker_timeout $ worker_retries $ spool_dir
               $ no_isolate $ quiet))

let client_t =
  let op =
    Arg.(value & pos 0 string "health" & info [] ~docv:"OP"
           ~doc:"Operation: analyze, optimize, rate, odc, health or stats.")
  in
  let spec =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"CIRCUIT"
           ~doc:"Benchmark name or .bench/.v file path (not needed for \
                 health).")
  in
  let inline =
    Arg.(value & flag & info [ "inline" ]
           ~doc:"Ship the netlist text inside the request instead of a \
                 path/name the daemon resolves on its own filesystem.")
  in
  let id =
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ID"
           ~doc:"Idempotency key: a repeated id replays the stored response \
                 instead of re-executing.")
  in
  let backend =
    Arg.(value & opt (some string) None & info [ "backend" ] ~docv:"NAME"
           ~doc:"SER estimator for analyze: aserta (default) or serpp.")
  in
  let vectors =
    Arg.(value & opt (some int) None & info [ "vectors" ]
           ~doc:"Random vectors for P_ij.")
  in
  let charge =
    Arg.(value & opt (some float) None & info [ "charge" ]
           ~doc:"Injected charge, fC (analyze).")
  in
  let top =
    Arg.(value & opt (some int) None & info [ "top" ]
           ~doc:"Softest gates / contributors to list.")
  in
  let evals =
    Arg.(value & opt (some int) None & info [ "evals" ]
           ~doc:"Optimizer cost evaluations.")
  in
  let greedy =
    Arg.(value & opt (some int) None & info [ "greedy" ]
           ~doc:"Greedy refinement passes (optimize).")
  in
  let clock =
    Arg.(value & opt (some float) None & info [ "clock" ] ~docv:"PS"
           ~doc:"Clock period (rate).")
  in
  let q_slope =
    Arg.(value & opt (some float) None & info [ "q-slope" ]
           ~doc:"Charge-collection slope, fC (rate).")
  in
  let deadline =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Per-request deadline enforced by the daemon.")
  in
  let isolate =
    Arg.(value & opt (some bool) None & info [ "isolate" ] ~docv:"BOOL"
           ~doc:"Force (true) or forbid (false) worker isolation; default: \
                 the daemon's per-op policy.")
  in
  let fault =
    Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"F"
           ~doc:"Test-only fault injection, forwarded to the isolated \
                 worker (crash, hang, sleep:MS, ...).")
  in
  let connect_timeout =
    Arg.(value & opt float 5. & info [ "connect-timeout" ] ~docv:"SECONDS"
           ~doc:"Connection-establishment timeout per attempt.")
  in
  let timeout =
    Arg.(value & opt float 300. & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Response timeout.")
  in
  let retries =
    Arg.(value & opt int 5 & info [ "retries" ] ~docv:"N"
           ~doc:"Transport-failure retries with exponential backoff.")
  in
  let retry_rejected =
    Arg.(value & flag & info [ "retry-rejected" ]
           ~doc:"Also retry retryable protocol rejections (overloaded, \
                 shutting_down, worker_failed); pair with --id so \
                 re-execution stays idempotent. Ignored with --repeat \
                 (the kept-alive path retries transport failures only).")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Send the request N times over one kept-alive framed \
                 connection (with transparent reconnect-and-retry if the \
                 daemon drops it); per-iteration status goes to stderr, \
                 the last payload to stdout.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request (or N repeats over one kept-alive \
             connection) to a running sertool serve daemon and print the \
             response payload")
    Term.(ret (const client_cmd $ socket_arg $ tcp_arg $ op $ spec $ inline
               $ id $ backend $ vectors $ charge $ top $ evals $ greedy
               $ clock $ q_slope $ deadline $ isolate $ fault
               $ connect_timeout $ timeout $ retries $ retry_rejected
               $ repeat))

let batch_t =
  let manifest =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MANIFEST"
           ~doc:"Manifest file: one job per line, \"SPEC [fault=F]\".")
  in
  let cmd =
    Arg.(value & opt string "analyze" & info [ "cmd" ] ~docv:"CMD"
           ~doc:"Per-job command: analyze, optimize, rate or odc.")
  in
  let vectors =
    Arg.(value & opt int 2000 & info [ "vectors" ] ~doc:"Random vectors for P_ij.")
  in
  let evals =
    Arg.(value & opt int 60 & info [ "evals" ]
           ~doc:"Optimizer cost evaluations (optimize jobs).")
  in
  let journal =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
           ~doc:"Write-ahead journal path (default MANIFEST.journal).")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Resume a previous run of the same manifest: jobs already \
                 journalled as done are skipped bit-identically.")
  in
  let parallel =
    Arg.(value & opt int 1 & info [ "parallel" ] ~docv:"N"
           ~doc:"Concurrent worker processes.")
  in
  let job_timeout =
    Arg.(value & opt float 300. & info [ "timeout-per-job" ] ~docv:"SECONDS"
           ~doc:"Per-attempt watchdog (monotonic clock): SIGTERM on expiry, \
                 SIGKILL after the grace period.")
  in
  let grace =
    Arg.(value & opt float 2. & info [ "grace" ] ~docv:"SECONDS"
           ~doc:"SIGTERM-to-SIGKILL grace period.")
  in
  let retries =
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N"
           ~doc:"Retries per job for transient failures (crash, hang, \
                 garbage output, unexplained exit) with exponential backoff; \
                 after the budget the job is recorded as degraded and the \
                 batch continues.")
  in
  let backoff =
    Arg.(value & opt float 1. & info [ "backoff" ] ~docv:"SECONDS"
           ~doc:"Base retry delay; grows exponentially with deterministic \
                 jitter.")
  in
  let results =
    Arg.(value & opt (some string) None & info [ "results" ] ~docv:"FILE"
           ~doc:"Write the final per-job results (derived from the journal) \
                 as JSON.")
  in
  let shard =
    Arg.(value & opt (some string) None & info [ "shard" ] ~docv:"I/N"
           ~doc:"Run only shard I of an N-way split of the manifest \
                 (FNV-keyed on the job id, so any worker recomputes any \
                 shard's job set without coordination). The default journal \
                 becomes MANIFEST.shard-I-of-N.journal; fold the shard \
                 journals back together with 'sertool batch merge'.")
  in
  let run_term =
    Term.(ret (const batch_cmd $ manifest $ cmd $ vectors $ evals $ journal
               $ resume $ shard $ parallel $ job_timeout $ grace $ retries
               $ backoff $ results $ obs_args $ obs_dir_arg))
  in
  let run_t =
    Cmd.v
      (Cmd.info "run"
         ~doc:"Run a manifest (or one shard of it) with crash-contained \
               worker processes and a resumable write-ahead journal")
      run_term
  in
  let merge_t =
    let journals =
      Arg.(value & pos_all string [] & info [] ~docv:"JOURNAL"
             ~doc:"Shard journal files to merge.")
    in
    let manifest =
      Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE"
             ~doc:"The manifest the shards were split from; enables gap \
                   detection (missing jobs, missing shards) and the retry \
                   manifest.")
    in
    let shards =
      Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
             ~doc:"Expected shard count (default: what the journals \
                   themselves declare).")
    in
    let results =
      Arg.(value & opt (some string) None & info [ "results" ] ~docv:"FILE"
             ~doc:"Write the merged results document (default: stdout). \
                   A complete merge is byte-identical to a single-host \
                   run's document; a partial merge carries an explicit \
                   degraded \"merge\" field.")
    in
    let retry =
      Arg.(value & opt (some string) None & info [ "retry-manifest" ]
             ~docv:"FILE"
             ~doc:"On gaps, write the manifest lines of the missing jobs \
                   here; re-run them and merge again (idempotent).")
    in
    let trace_ins =
      Arg.(value & opt_all string [] & info [ "trace-in" ] ~docv:"FILE"
             ~doc:"Per-shard Chrome trace file (repeatable, in shard \
                   order) to fold into --merged-trace.")
    in
    let merged_trace =
      Arg.(value & opt (some string) None & info [ "merged-trace" ]
             ~docv:"FILE"
             ~doc:"Write one merged multi-worker timeline: each shard's \
                   threads land in their own tid band with shard-prefixed \
                   names.")
    in
    Cmd.v
      (Cmd.info "merge"
         ~doc:"Fold N shard journals into the bit-identical results \
               document a single-host run produces; torn tails are \
               tolerated, gaps become a retry manifest and a degraded \
               document, digest conflicts are a typed integrity error \
               (exit 5)")
      Term.(ret (const batch_merge_cmd $ journals $ manifest $ shards
                 $ results $ retry $ trace_ins $ merged_trace $ obs_args))
  in
  let status_t =
    let journals =
      Arg.(value & pos_all string [] & info [] ~docv:"JOURNAL"
             ~doc:"Shard journal files to inspect.")
    in
    Cmd.v
      (Cmd.info "status"
         ~doc:"Tabulate fleet progress from shard journals without \
               merging: done/failed/degraded/pending per shard plus a \
               fleet total; read-only and safe while the shards are \
               still running (torn tails are tolerated and flagged)")
      Term.(ret (const batch_status_cmd $ journals))
  in
  Cmd.group ~default:run_term
    (Cmd.info "batch"
       ~doc:"Run ASERTA/SERTOPT over a manifest of circuits with \
             crash-contained worker processes, a watchdog, retry/backoff, \
             a resumable write-ahead journal, deterministic sharding \
             across hosts and a bit-identical journal merge")
    [ run_t; merge_t; status_t ]

let report_t =
  let trace =
    Arg.(required & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Chrome trace file written by --trace (or batch merge \
                 --merged-trace).")
  in
  let top =
    Arg.(value & opt int 30 & info [ "top" ] ~docv:"N"
           ~doc:"Rows to print (0 = all), sorted by self time.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Fold a Chrome trace into a per-span self/total-time table on \
             stdout, so profiling a sweep does not require Perfetto")
    Term.(ret (const report_cmd $ trace $ top))

let xval_t =
  let circuit =
    Arg.(value & pos 0 string "c432" & info [] ~docv:"CIRCUIT"
           ~doc:"Benchmark name (the generator set: c17, c432, ...).")
  in
  let corpus =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Run the study over every .bench file in DIR (name order) \
                 and print one aggregate agreement table instead of a \
                 single-circuit report; the positional CIRCUIT is \
                 ignored.")
  in
  let vectors =
    Arg.(value & opt int 2000 & info [ "vectors" ]
           ~doc:"Random vectors for ASERTA's P_ij (serpp is vectorless).")
  in
  let charge =
    Arg.(value & opt float 16. & info [ "charge" ] ~doc:"Injected charge, fC.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ]
           ~doc:"Rank-overlap window: softest gates compared across backends.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Export the cross-validation report as JSON.")
  in
  Cmd.v
    (Cmd.info "xval"
       ~doc:"Cross-validate the serpp backend against ASERTA: per-gate \
             Pearson/Spearman correlation and top-N rank overlap on one \
             benchmark")
    Term.(ret (const xval_cmd $ jobs_arg $ obs_args $ circuit $ corpus
               $ vectors $ charge $ top $ json))

let main =
  Cmd.group
    (Cmd.info "sertool" ~version:"1.0.0"
       ~doc:"Soft-error tolerance analysis (ASERTA) and optimization (SERTOPT) \
             of combinational nanometer circuits")
    [ info_t; generate_t; analyze_t; optimize_t; rate_t; odc_t; xval_t;
      timing_t; pipeline_t; harden_t; characterize_t; export_deck_t;
      export_lib_t; batch_t; serve_t; client_t; worker_t; report_t ]

(* Batch workers inherit SERTOOL_TRACE/SERTOOL_METRICS from the supervisor
   so their observability lands in per-job files without extra flags. *)
let () = Obs.install_from_env ()

(* "sertool batch MANIFEST" predates the run/merge split; keep it
   working as shorthand for "sertool batch run MANIFEST". *)
let argv =
  let a = Sys.argv in
  if
    Array.length a >= 3
    && a.(1) = "batch"
    && (match a.(2) with
       | "run" | "merge" | "status" -> false
       | s -> s = "" || s.[0] <> '-')
  then Array.concat [ [| a.(0); "batch"; "run" |]; Array.sub a 2 (Array.length a - 2) ]
  else a

let () = exit (Cmd.eval' ~argv main)
