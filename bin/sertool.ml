(* sertool: command-line front end for the ASERTA/SERTOPT library.

   Circuits are named either by benchmark name (c17, c432, ... -- the
   synthetic ISCAS'85-alikes) or by a path to an ISCAS .bench file. *)

(* Exit codes, so scripts can tell failure classes apart:
   0 success (including budget-degraded results -- they are still valid),
   2 input/parse errors (bad file, unknown circuit, malformed flags),
   3 numerical failures (spice/aserta diagnostics),
   4 budget diagnostics surfaced as errors. *)
let exit_ok = 0
let exit_input = 2
let exit_numerical = 3
let exit_budget = 4

let exit_code_of_diag (d : Ser_util.Diag.t) =
  match d.Ser_util.Diag.subsystem with
  | "spice" | "cell" | "aserta" | "sertopt" -> exit_numerical
  | "budget" -> exit_budget
  | _ -> exit_input

let render_diag d = prerr_endline ("sertool: " ^ Ser_util.Diag.to_string d)

(* -j N pins the worker-pool width for the whole process (0 =
   autodetect); the default -1 leaves the SERTOOL_JOBS variable /
   autodetection in charge. Results are bit-identical for every
   setting; see lib/par. *)
let apply_jobs j = if j >= 0 then Ser_par.Par.set_jobs j

module Obs = Ser_obs.Obs

(* --trace/--metrics: arrange the export; the files are written by the
   obs process-exit hook (and on failure degrade to a stderr
   diagnostic — observability must never take the analysis down). *)
let apply_obs (trace, metrics) =
  (match trace with Some p -> Obs.set_trace_file (Some p) | None -> ());
  match metrics with Some p -> Obs.set_metrics_file (Some p) | None -> ()

(* one-line pool summary on stderr after a heavy command, so timing
   investigations can see how the work was spread without the output
   format changing *)
let report_pool () =
  if Ser_par.Par.jobs () > 1 then
    prerr_endline
      ("sertool: " ^ Ser_util.Diag.to_string (Ser_par.Par.stats_diag ()))

(* user-facing failures (bad file, unknown name, located diagnostics)
   become a one-line stderr message and a classed exit code instead of
   "internal error" traces *)
let wrap f =
  try f () with
  | Ser_util.Diag.Diag_error d ->
    render_diag d;
    `Ok (exit_code_of_diag d)
  | Failure msg | Invalid_argument msg | Sys_error msg ->
    prerr_endline ("sertool: error: " ^ msg);
    `Ok exit_input

let or_diag = function Ok v -> v | Error d -> raise (Ser_util.Diag.Diag_error d)

let load_circuit spec =
  if Sys.file_exists spec then
    let parse =
      if Filename.check_suffix spec ".v" then
        Ser_netlist.Verilog_format.parse_file
      else Ser_netlist.Bench_format.parse_file
    in
    match parse spec with
    | Ok c -> c
    | Error d -> raise (Ser_util.Diag.Diag_error d)
  else if List.mem spec Ser_circuits.Iscas.names then
    Ser_circuits.Iscas.load spec
  else
    failwith
      (Printf.sprintf
         "unknown circuit %S (not a file; known benchmarks: %s)" spec
         (String.concat ", " Ser_circuits.Iscas.names))

let make_library vdds vths =
  let axes =
    Ser_cell.Library.restrict
      ?vdds:(if vdds = [] then None else Some vdds)
      ?vths:(if vths = [] then None else Some vths)
      Ser_cell.Library.default_axes
  in
  Ser_cell.Library.create ~axes ()

(* ------------------------------------------------------------------ *)

let info_cmd spec =
  wrap @@ fun () ->
  let c = load_circuit spec in
  Format.printf "%s:@.%a@." c.Ser_netlist.Circuit.name
    Ser_netlist.Circuit.pp_stats
    (Ser_netlist.Circuit.stats c);
  `Ok exit_ok

let generate_cmd name seed format output =
  wrap @@ fun () ->
  if not (List.mem name Ser_circuits.Iscas.names) then
    failwith (Printf.sprintf "unknown benchmark %S" name)
  else begin
    let c = Ser_circuits.Iscas.load ~seed name in
    let render =
      match format with
      | "bench" -> Ser_netlist.Bench_format.to_string
      | "verilog" -> Ser_netlist.Verilog_format.to_string
      | "dot" -> Ser_netlist.Dot_export.to_dot ?annotation:None
      | other -> failwith (Printf.sprintf "unknown format %S" other)
    in
    (match output with
    | Some path ->
      let oc = open_out path in
      output_string oc (render c);
      close_out oc;
      Printf.printf "wrote %s (%d gates)\n" path
        (Ser_netlist.Circuit.gate_count c)
    | None -> print_string (render c));
    `Ok exit_ok
  end

let analyze_cmd jobs obs spec vectors charge top vdds vths json dot =
  wrap @@ fun () ->
  apply_jobs jobs;
  apply_obs obs;
  Obs.Trace.with_span "sertool.analyze" @@ fun () ->
  let c = load_circuit spec in
  let lib = make_library vdds vths in
  let asg = Sertopt.Optimizer.size_for_speed lib c in
  let config =
    { Aserta.Analysis.default_config with
      Aserta.Analysis.vectors; charge }
  in
  let t0 = Unix.gettimeofday () in
  let r = or_diag (Aserta.Analysis.run_checked ~config lib asg) in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "circuit %s: %d gates, critical delay %.1f ps\n"
    c.Ser_netlist.Circuit.name
    (Ser_netlist.Circuit.gate_count c)
    r.Aserta.Analysis.timing.Ser_sta.Timing.critical_delay;
  Printf.printf "total unreliability U = %.1f  (%d vectors, %.1f fC, %.2f s)\n\n"
    r.Aserta.Analysis.total vectors charge dt;
  let idx = Array.init (Array.length r.Aserta.Analysis.unreliability) Fun.id in
  Array.sort
    (fun a b ->
      compare r.Aserta.Analysis.unreliability.(b) r.Aserta.Analysis.unreliability.(a))
    idx;
  Printf.printf "top %d softest gates:\n" top;
  let tbl =
    Ser_util.Ascii_table.create
      ~aligns:[ Ser_util.Ascii_table.Left; Ser_util.Ascii_table.Left ]
      [ "gate"; "cell"; "U_i"; "w_gen (ps)"; "share" ]
  in
  Array.iteri
    (fun k id ->
      if k < top && r.Aserta.Analysis.unreliability.(id) > 0. then
        Ser_util.Ascii_table.add_row tbl
          [
            (Ser_netlist.Circuit.node c id).Ser_netlist.Circuit.name;
            Ser_device.Cell_params.to_string (Ser_sta.Assignment.get asg id);
            Printf.sprintf "%.1f" r.Aserta.Analysis.unreliability.(id);
            Printf.sprintf "%.1f" r.Aserta.Analysis.gen_width.(id);
            Printf.sprintf "%.1f%%"
              (100. *. r.Aserta.Analysis.unreliability.(id)
              /. r.Aserta.Analysis.total);
          ])
    idx;
  Ser_util.Ascii_table.print tbl;
  (match json with
  | Some path ->
    Ser_repro.Report.write path (Ser_repro.Report.analysis_to_json asg r);
    Printf.printf "wrote %s\n" path
  | None -> ());
  (match dot with
  | Some path ->
    let u_max =
      Array.fold_left Float.max 1e-12 r.Aserta.Analysis.unreliability
    in
    let annotation =
      {
        Ser_netlist.Dot_export.label =
          (fun id ->
            if Ser_netlist.Circuit.is_input c id then None
            else Some (Printf.sprintf "U=%.1f" r.Aserta.Analysis.unreliability.(id)));
        heat = (fun id -> r.Aserta.Analysis.unreliability.(id) /. u_max);
      }
    in
    Ser_netlist.Dot_export.write_dot ~annotation path c;
    Printf.printf "wrote %s\n" path
  | None -> ());
  report_pool ();
  `Ok exit_ok

let optimize_cmd jobs obs spec vectors evals greedy vdds vths budget_evals
    timeout checkpoint output json =
  wrap @@ fun () ->
  apply_jobs jobs;
  apply_obs obs;
  Obs.Trace.with_span "sertool.optimize" @@ fun () ->
  let c = load_circuit spec in
  let lib = make_library vdds vths in
  let baseline = Sertopt.Optimizer.size_for_speed lib c in
  let cfg =
    {
      Sertopt.Optimizer.default_config with
      Sertopt.Optimizer.aserta =
        { Aserta.Analysis.default_config with Aserta.Analysis.vectors };
      max_evals = evals;
      greedy_passes = greedy;
    }
  in
  (* a budget always exists so that SIGINT/SIGTERM can cancel it: the
     optimizer then stops at its next poll and returns the best-so-far
     incumbent, which flushes the checkpoint and prints the partial
     summary instead of discarding the run *)
  let budget =
    Some (Ser_util.Budget.create ?max_evals:budget_evals ?max_seconds:timeout ())
  in
  let initial =
    match checkpoint with
    | Some path when Sys.file_exists path ->
      let cp = or_diag (Sertopt.Checkpoint.restore path ~base:baseline) in
      Printf.printf "resuming from checkpoint %s (%d evals%s)\n" path
        cp.Sertopt.Checkpoint.evals
        (match cp.Sertopt.Checkpoint.cost with
        | Some v -> Printf.sprintf ", cost %.4f" v
        | None -> "");
      Some cp.Sertopt.Checkpoint.assignment
    | _ -> None
  in
  let restore_signals =
    let handler =
      Sys.Signal_handle
        (fun _ -> Option.iter Ser_util.Budget.cancel budget)
    in
    let prev_int = Sys.signal Sys.sigint handler in
    let prev_term = Sys.signal Sys.sigterm handler in
    fun () ->
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigterm prev_term
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Fun.protect ~finally:restore_signals (fun () ->
        Sertopt.Optimizer.optimize ~config:cfg ?budget ?initial lib baseline)
  in
  let dt = Unix.gettimeofday () -. t0 in
  let interrupted =
    match budget with
    | Some b -> Ser_util.Budget.was_cancelled b
    | None -> false
  in
  if interrupted then
    print_endline
      "interrupted (SIGINT/SIGTERM): returning the best-so-far incumbent; \
       partial summary and checkpoint follow";
  let b = r.Sertopt.Optimizer.baseline_metrics in
  let o = r.Sertopt.Optimizer.optimized_metrics in
  let rat = Sertopt.Cost.ratios ~baseline:b o in
  Printf.printf "unreliability: %.1f -> %.1f  (decrease %.1f%%)\n"
    b.Sertopt.Cost.unreliability o.Sertopt.Cost.unreliability
    (100. *. Sertopt.Optimizer.unreliability_reduction r);
  Printf.printf "area %.2fX  energy %.2fX  delay %.2fX  (%d cost evals, %.1f s)\n"
    rat.Sertopt.Cost.area rat.Sertopt.Cost.energy rat.Sertopt.Cost.delay
    r.Sertopt.Optimizer.evals dt;
  if r.Sertopt.Optimizer.degraded then
    print_endline
      "budget exhausted: result is the best incumbent found so far (degraded)";
  (match checkpoint with
  | None -> ()
  | Some path ->
    let cost =
      Sertopt.Cost.eval ~weights:cfg.Sertopt.Optimizer.weights
        ~delay_slack:cfg.Sertopt.Optimizer.delay_slack ~baseline:b o
    in
    or_diag
      (Sertopt.Checkpoint.save path ~cost ~evals:r.Sertopt.Optimizer.evals
         r.Sertopt.Optimizer.optimized);
    Printf.printf "wrote checkpoint %s\n" path);
  Format.printf "%a@."
    Sertopt.Optimizer.pp_knob_summary
    (Sertopt.Optimizer.knob_summary r);
  (match output with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc "# optimized cell assignment for %s\n"
      c.Ser_netlist.Circuit.name;
    Ser_sta.Assignment.fold_gates r.Sertopt.Optimizer.optimized ~init:()
      ~f:(fun () id cell ->
        Printf.fprintf oc "%s: %s\n"
          (Ser_netlist.Circuit.node c id).Ser_netlist.Circuit.name
          (Ser_device.Cell_params.to_string cell));
    close_out oc;
    Printf.printf "wrote %s\n" path);
  (match json with
  | Some path ->
    Ser_repro.Report.write path (Ser_repro.Report.optimization_to_json r);
    Printf.printf "wrote %s\n" path
  | None -> ());
  report_pool ();
  `Ok exit_ok

let rate_cmd jobs obs spec vectors clock q_slope top =
  wrap @@ fun () ->
  apply_jobs jobs;
  apply_obs obs;
  Obs.Trace.with_span "sertool.rate" @@ fun () ->
  let c = load_circuit spec in
  let lib = make_library [] [] in
  let asg = Sertopt.Optimizer.size_for_speed lib c in
  let config =
    { Aserta.Analysis.default_config with Aserta.Analysis.vectors }
  in
  let analysis = Aserta.Analysis.run ~config lib asg in
  let spectrum =
    { Aserta.Ser_rate.default_spectrum with Aserta.Ser_rate.q_slope }
  in
  let r = Aserta.Ser_rate.run ~spectrum ?clock_period:clock lib asg analysis in
  Printf.printf
    "%s: SER = %.2f FIT (synthetic flux normalisation)\n\
     clock %.0f ps, exponential charge spectrum with Qs = %.1f fC\n\n"
    c.Ser_netlist.Circuit.name r.Aserta.Ser_rate.total
    r.Aserta.Ser_rate.clock_period q_slope;
  let idx = Array.init (Array.length r.Aserta.Ser_rate.per_gate) Fun.id in
  Array.sort
    (fun a b -> compare r.Aserta.Ser_rate.per_gate.(b) r.Aserta.Ser_rate.per_gate.(a))
    idx;
  Printf.printf "top %d contributors:\n" top;
  Array.iteri
    (fun k id ->
      if k < top && r.Aserta.Ser_rate.per_gate.(id) > 0. then
        Printf.printf "  %-12s %8.3f FIT (%.1f%%)\n"
          (Ser_netlist.Circuit.node c id).Ser_netlist.Circuit.name
          r.Aserta.Ser_rate.per_gate.(id)
          (100. *. r.Aserta.Ser_rate.per_gate.(id) /. r.Aserta.Ser_rate.total))
    idx;
  report_pool ();
  `Ok exit_ok

let harden_cmd jobs spec method_ fraction output =
  wrap @@ fun () ->
  apply_jobs jobs;
  let c = load_circuit spec in
  let hardened =
    match method_ with
    | "tmr" -> Ser_harden.Transforms.tmr c
    | "ced" -> Ser_harden.Transforms.duplicate_with_compare c
    | "ptmr" ->
      let lib = make_library [] [] in
      let asg = Ser_sta.Assignment.uniform lib c in
      let cfg =
        { Aserta.Analysis.default_config with Aserta.Analysis.vectors = 3000 }
      in
      let analysis = Aserta.Analysis.run ~config:cfg lib asg in
      let protect = Ser_harden.Transforms.softest_gates analysis ~fraction in
      Ser_harden.Transforms.selective_tmr c ~protect
    | other -> failwith (Printf.sprintf "unknown method %S (tmr|ptmr|ced)" other)
  in
  Printf.printf "%s: %d gates -> %s: %d gates (%.2fX)\n" c.Ser_netlist.Circuit.name
    (Ser_netlist.Circuit.gate_count c)
    hardened.Ser_netlist.Circuit.name
    (Ser_netlist.Circuit.gate_count hardened)
    (float_of_int (Ser_netlist.Circuit.gate_count hardened)
    /. float_of_int (Ser_netlist.Circuit.gate_count c));
  (match output with
  | Some path ->
    Ser_netlist.Bench_format.write_file path hardened;
    Printf.printf "wrote %s\n" path
  | None -> print_string (Ser_netlist.Bench_format.to_string hardened));
  `Ok exit_ok

let pipeline_cmd jobs spec stages clock =
  wrap @@ fun () ->
  apply_jobs jobs;
  let c = load_circuit spec in
  let lib = make_library [] [] in
  let slices =
    if stages = 1 then [ c ]
    else Ser_pipeline.Pipeline.split_by_levels c ~stages
  in
  let p = Ser_pipeline.Pipeline.create ~lib slices in
  let aserta =
    { Aserta.Analysis.default_config with Aserta.Analysis.vectors = 2000 }
  in
  let r = Ser_pipeline.Pipeline.analyze ~aserta ~lib ?clock_period:clock p in
  Printf.printf
    "%s as a %d-stage pipeline: clock %.0f ps (min %.0f ps), %d flip-flops\n"
    c.Ser_netlist.Circuit.name stages r.Ser_pipeline.Pipeline.clock_period
    r.Ser_pipeline.Pipeline.min_period
    (Ser_pipeline.Pipeline.flipflop_count p);
  List.iter
    (fun (sn, v) -> Printf.printf "  %-24s SER %10.2f\n" sn v)
    r.Ser_pipeline.Pipeline.stage_ser;
  Printf.printf "  %-24s SER %10.2f\n" "flip-flops" r.Ser_pipeline.Pipeline.ff_ser;
  Printf.printf "  %-24s SER %10.2f\n" "total" r.Ser_pipeline.Pipeline.total;
  report_pool ();
  `Ok exit_ok

let timing_cmd jobs spec n_paths vdds vths =
  wrap @@ fun () ->
  apply_jobs jobs;
  let c = load_circuit spec in
  let lib = make_library vdds vths in
  let asg = Sertopt.Optimizer.size_for_speed lib c in
  let t = Ser_sta.Timing.analyze lib asg in
  Printf.printf "%s: critical delay %.1f ps across %d gates (depth %d)\n\n"
    c.Ser_netlist.Circuit.name t.Ser_sta.Timing.critical_delay
    (Ser_netlist.Circuit.gate_count c)
    (Ser_netlist.Circuit.depth c);
  let paths = Ser_sta.Paths.k_worst_paths asg t ~k:n_paths in
  Array.iteri
    (fun rank path ->
      Printf.printf "path %d: delay %.1f ps\n" (rank + 1)
        (Ser_sta.Paths.path_delay t path);
      Array.iter
        (fun id ->
          let nd = Ser_netlist.Circuit.node c id in
          if nd.Ser_netlist.Circuit.kind = Ser_netlist.Gate.Input then
            Printf.printf "  %-12s (input)                      arrival %8.1f\n"
              nd.Ser_netlist.Circuit.name t.Ser_sta.Timing.arrival.(id)
          else
            Printf.printf "  %-12s %-28s delay %6.1f  arrival %8.1f  slack %6.1f\n"
              nd.Ser_netlist.Circuit.name
              (Ser_device.Cell_params.to_string (Ser_sta.Assignment.get asg id))
              t.Ser_sta.Timing.delays.(id)
              t.Ser_sta.Timing.arrival.(id)
              t.Ser_sta.Timing.slack.(id))
        path;
      print_newline ())
    paths;
  `Ok exit_ok

let export_deck_cmd spec strike vector charge output =
  wrap @@ fun () ->
  let c = load_circuit spec in
  let lib = make_library [] [] in
  let asg = Sertopt.Optimizer.size_for_speed lib c in
  let strike_id =
    match Ser_netlist.Circuit.find_by_name c strike with
    | Some id -> id
    | None -> failwith (Printf.sprintf "no gate named %S" strike)
  in
  let n_in = Array.length c.Ser_netlist.Circuit.inputs in
  let input_values =
    match vector with
    | Some bits ->
      if String.length bits <> n_in then
        failwith (Printf.sprintf "vector needs %d bits" n_in);
      Array.init n_in (fun i -> bits.[i] = '1')
    | None ->
      let rng = Ser_rng.Rng.create 1 in
      Array.init n_in (fun _ -> Ser_rng.Rng.bool rng)
  in
  let config =
    { Ser_spice.Circuit_sim.default_config with Ser_spice.Circuit_sim.charge }
  in
  Ser_spice.Deck_export.write_strike_deck ~config output c
    ~assignment:(Ser_sta.Assignment.get asg) ~input_values ~strike:strike_id;
  Printf.printf "wrote %s (strike on %s)\n" output strike;
  `Ok exit_ok

let export_lib_cmd kind fanin output =
  wrap @@ fun () ->
  match Ser_netlist.Gate.of_string kind with
  | None | Some Ser_netlist.Gate.Input ->
    failwith (Printf.sprintf "unknown gate kind %S" kind)
  | Some k ->
    let lib = Ser_cell.Library.create () in
    let cells = Ser_cell.Library.variants lib k fanin in
    Ser_cell.Liberty_export.write output lib ~cells;
    Printf.printf "wrote %s (%d cells)\n" output (List.length cells);
    `Ok exit_ok

let characterize_cmd kind fanin size length vdd vth =
  wrap @@ fun () ->
  match Ser_netlist.Gate.of_string kind with
  | None | Some Ser_netlist.Gate.Input ->
    failwith (Printf.sprintf "unknown gate kind %S" kind)
  | Some k ->
    let p = Ser_device.Cell_params.v ~size ~length ~vdd ~vth k fanin in
    Printf.printf "cell %s\n" (Ser_device.Cell_params.to_string p);
    Printf.printf "  input cap   : %.3f fF\n" (Ser_device.Gate_model.input_cap p);
    Printf.printf "  output cap  : %.3f fF\n" (Ser_device.Gate_model.output_cap p);
    Printf.printf "  area        : %.2f (min-inverter units)\n"
      (Ser_device.Gate_model.area p);
    Printf.printf "  leakage     : %.4f uW\n"
      (1000. *. Ser_device.Gate_model.leakage_power p);
    let cload = 4. *. Ser_device.Gate_model.input_cap p in
    let d_a = Ser_device.Gate_model.delay p ~input_ramp:20. ~cload in
    let d_t, r_t = Ser_spice.Char.delay_and_ramp p ~cload ~input_ramp:20. in
    Printf.printf "  FO4 delay   : %.2f ps analytic, %.2f ps transient (ramp %.1f ps)\n"
      d_a d_t r_t;
    let w_a =
      Ser_device.Gate_model.generated_glitch_width p
        ~node_cap:(cload +. Ser_device.Gate_model.output_cap p)
        ~charge:16. ~output_low:true
    in
    let w_t =
      Ser_spice.Char.generated_glitch_width p ~cload ~charge:16. ~output_low:true
    in
    Printf.printf "  glitch @16fC: %.1f ps analytic, %.1f ps transient\n" w_a w_t;
    `Ok exit_ok

(* ------------------------------------------------------------------ *)
(* batch supervision: hidden worker mode + the batch front end         *)
(* ------------------------------------------------------------------ *)

module Journal = Ser_jobs.Journal
module Supervisor = Ser_jobs.Supervisor

(* The worker half of the supervisor protocol: run one analysis in
   this (child) process and emit exactly one JSON document on stdout —
   {"ok":true,"result":...} or {"ok":false,"diag":...} plus a classed
   exit code. [--fault] is test-only injection used by the fault
   harness and CI to exercise the supervisor's failure taxonomy. *)
let worker_attempt () =
  match Sys.getenv_opt "SERTOOL_WORKER_ATTEMPT" with
  | Some s -> (match int_of_string_opt s with Some n -> n | None -> 1)
  | None -> 1

let apply_worker_fault fault =
  let crash signal = Unix.kill (Unix.getpid ()) signal in
  match fault with
  | None -> ()
  | Some "hang" ->
    while true do
      Unix.sleepf 3600.
    done
  | Some "crash" -> crash Sys.sigsegv
  | Some "oom" ->
    (* stand-in for the OOM killer: die by uncatchable SIGKILL *)
    crash Sys.sigkill
  | Some "garbage" ->
    print_string "%% this is not the worker protocol %%\n";
    exit 0
  | Some f when String.length f > 5 && String.sub f 0 5 = "exit:" ->
    exit
      (match int_of_string_opt (String.sub f 5 (String.length f - 5)) with
      | Some n -> n
      | None -> 1)
  | Some f when String.length f > 6 && String.sub f 0 6 = "flaky:" ->
    (* transient: crash on attempts below N, succeed afterwards — the
       path that proves retry-with-backoff recovers a job *)
    let n =
      match int_of_string_opt (String.sub f 6 (String.length f - 6)) with
      | Some n -> n
      | None -> 2
    in
    if worker_attempt () < n then crash Sys.sigsegv
  | Some other ->
    prerr_endline ("sertool worker: unknown fault " ^ other);
    exit exit_input

let worker_result_json spec cmd vectors evals =
  let c = load_circuit spec in
  let lib = make_library [] [] in
  match cmd with
  | "analyze" ->
    let asg = Sertopt.Optimizer.size_for_speed lib c in
    let config =
      { Aserta.Analysis.default_config with Aserta.Analysis.vectors }
    in
    let r = or_diag (Aserta.Analysis.run_checked ~config lib asg) in
    Ser_util.Json.(
      Obj
        [
          ("cmd", Str "analyze");
          ("circuit", Str c.Ser_netlist.Circuit.name);
          ("gates", int (Ser_netlist.Circuit.gate_count c));
          ( "critical_delay_ps",
            Num r.Aserta.Analysis.timing.Ser_sta.Timing.critical_delay );
          ("total_unreliability", Num r.Aserta.Analysis.total);
          ("vectors", int vectors);
        ])
  | "optimize" ->
    let baseline = Sertopt.Optimizer.size_for_speed lib c in
    let cfg =
      {
        Sertopt.Optimizer.default_config with
        Sertopt.Optimizer.aserta =
          { Aserta.Analysis.default_config with Aserta.Analysis.vectors };
        max_evals = evals;
        greedy_passes = 1;
      }
    in
    let r = Sertopt.Optimizer.optimize ~config:cfg lib baseline in
    let b = r.Sertopt.Optimizer.baseline_metrics in
    let o = r.Sertopt.Optimizer.optimized_metrics in
    let rat = Sertopt.Cost.ratios ~baseline:b o in
    Ser_util.Json.(
      Obj
        [
          ("cmd", Str "optimize");
          ("circuit", Str c.Ser_netlist.Circuit.name);
          ("gates", int (Ser_netlist.Circuit.gate_count c));
          ("u_before", Num b.Sertopt.Cost.unreliability);
          ("u_after", Num o.Sertopt.Cost.unreliability);
          ("evals", int r.Sertopt.Optimizer.evals);
          ("area_ratio", Num rat.Sertopt.Cost.area);
          ("energy_ratio", Num rat.Sertopt.Cost.energy);
          ("delay_ratio", Num rat.Sertopt.Cost.delay);
          ("degraded", Bool r.Sertopt.Optimizer.degraded);
        ])
  | other -> failwith (Printf.sprintf "unknown worker command %S" other)

let worker_cmd spec cmd vectors evals fault =
  apply_worker_fault fault;
  match
    Ser_util.Diag.guard ~subsystem:"worker" (fun () ->
        worker_result_json spec cmd vectors evals)
  with
  | Ok result ->
    print_string
      (Ser_util.Json.to_string ~indent:false
         (Ser_util.Json.Obj
            [ ("ok", Ser_util.Json.Bool true); ("result", result) ]));
    print_newline ();
    `Ok exit_ok
  | Error d ->
    print_string
      (Ser_util.Json.to_string ~indent:false
         (Ser_util.Json.Obj
            [
              ("ok", Ser_util.Json.Bool false);
              ("diag", Ser_util.Diag.to_json d);
            ]));
    print_newline ();
    `Ok (exit_code_of_diag d)

(* Manifest: one job per line, "SPEC [fault=F]"; '#' comments and
   blank lines ignored. SPEC is a .bench/.v path or a benchmark name,
   exactly as for single-run commands. *)
let parse_manifest path =
  let ic =
    try open_in path
    with Sys_error msg ->
      raise
        (Ser_util.Diag.Diag_error
           (Ser_util.Diag.make ~subsystem:"jobs"
              ~context:[ Ser_util.Diag.file path ]
              msg))
  in
  let lines = ref [] in
  (try
     let n = ref 0 in
     while true do
       incr n;
       lines := (!n, input_line ic) :: !lines
     done
   with End_of_file -> close_in ic);
  let entries =
    List.rev !lines
    |> List.filter_map (fun (n, raw) ->
           let line =
             match String.index_opt raw '#' with
             | Some h -> String.sub raw 0 h
             | None -> raw
           in
           let line = String.trim line in
           if line = "" then None
           else
             match String.split_on_char ' ' line |> List.filter (( <> ) "") with
             | [ spec ] -> Some (n, spec, None)
             | [ spec; opt ] when String.length opt > 6
                                  && String.sub opt 0 6 = "fault=" ->
               let f = String.sub opt 6 (String.length opt - 6) in
               let known =
                 match f with
                 | "hang" | "crash" | "oom" | "garbage" -> true
                 | _ ->
                   (String.length f > 5 && String.sub f 0 5 = "exit:")
                   || (String.length f > 6 && String.sub f 0 6 = "flaky:")
               in
               (* catch typos here, with a line number, instead of
                  letting every attempt die in the worker as a
                  retried-then-degraded mystery *)
               if not known then
                 raise
                   (Ser_util.Diag.Diag_error
                      (Ser_util.Diag.make ~subsystem:"jobs"
                         ~context:
                           [ Ser_util.Diag.file path; Ser_util.Diag.line n ]
                         (Printf.sprintf
                            "unknown fault %S (known: hang, crash, oom, \
                             garbage, exit:N, flaky:N)"
                            f)));
               Some (n, spec, Some f)
             | _ ->
               raise
                 (Ser_util.Diag.Diag_error
                    (Ser_util.Diag.make ~subsystem:"jobs"
                       ~context:[ Ser_util.Diag.file path; Ser_util.Diag.line n ]
                       (Printf.sprintf "malformed manifest line %S" raw))))
  in
  if entries = [] then
    raise
      (Ser_util.Diag.Diag_error
         (Ser_util.Diag.make ~subsystem:"jobs"
            ~context:[ Ser_util.Diag.file path ]
            "manifest lists no jobs"));
  (* job ids must be unique: suffix duplicated specs with #k *)
  let seen = Hashtbl.create 16 in
  List.map
    (fun (_, spec, fault) ->
      let k =
        match Hashtbl.find_opt seen spec with Some k -> k + 1 | None -> 0
      in
      Hashtbl.replace seen spec k;
      let id = if k = 0 then spec else Printf.sprintf "%s#%d" spec k in
      (id, spec, fault))
    entries

let print_batch_event ev =
  match ev with
  | Journal.Started { job; attempt } ->
    Printf.printf "[%s] started (attempt %d)\n%!" job attempt
  | Journal.Attempt_failed { job; attempt; cls; detail; backoff_s } ->
    Printf.printf "[%s] attempt %d failed (%s: %s)%s\n%!" job attempt cls detail
      (if backoff_s > 0. then Printf.sprintf "; retrying in %.2f s" backoff_s
       else "")
  | Journal.Interrupted { job; attempt } ->
    Printf.printf "[%s] interrupted during attempt %d (will re-run on \
                   --resume)\n%!"
      job attempt
  | Journal.Done { job; status; digest; _ } ->
    Printf.printf "[%s] done: %s (digest %s)\n%!" job status
      (String.sub digest 0 (min 12 (String.length digest)))
  | Journal.Batch_start _ | Journal.Batch_end _ | Journal.Enqueued _ -> ()

(* Per-job observability files under --obs-dir: the supervisor hands
   each worker its own SERTOOL_TRACE/SERTOOL_METRICS paths through the
   environment, and the results document references them. Job ids may
   embed '/' (path specs) — flatten for the filename. *)
let obs_job_file dir id ext =
  let flat = String.map (fun ch -> if ch = '/' then '_' else ch) id in
  Filename.concat dir (flat ^ ext)

let obs_job_env obs_dir id =
  match obs_dir with
  | None -> []
  | Some dir ->
    [
      ("SERTOOL_TRACE", obs_job_file dir id ".trace.json");
      ("SERTOOL_METRICS", obs_job_file dir id ".metrics.json");
    ]

let obs_results_field obs_dir entries =
  match obs_dir with
  | None -> []
  | Some dir ->
    [
      ( "obs",
        Ser_util.Json.Obj
          [
            ("dir", Ser_util.Json.Str dir);
            ( "jobs",
              Ser_util.Json.Obj
                (List.map
                   (fun (id, _, _) ->
                     ( id,
                       Ser_util.Json.Obj
                         [
                           ( "trace",
                             Ser_util.Json.Str (obs_job_file dir id ".trace.json") );
                           ( "metrics",
                             Ser_util.Json.Str (obs_job_file dir id ".metrics.json")
                           );
                         ] ))
                   entries) );
          ] );
    ]

let batch_cmd manifest cmd vectors evals journal_path resume parallel
    job_timeout grace retries backoff results obs obs_dir =
  wrap @@ fun () ->
  apply_obs obs;
  (match obs_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | Some _ | None -> ());
  let entries = parse_manifest manifest in
  let journal_path =
    match journal_path with Some p -> p | None -> manifest ^ ".journal"
  in
  let resume_state =
    if resume then
      if Sys.file_exists journal_path then Some (or_diag (Journal.replay journal_path))
      else None
    else begin
      if
        Sys.file_exists journal_path
        && (Unix.stat journal_path).Unix.st_size > 0
      then
        failwith
          (Printf.sprintf
             "journal %s already exists; pass --resume to continue that \
              batch or remove it to start over"
             journal_path);
      None
    end
  in
  let self = Sys.executable_name in
  let jobs =
    List.map
      (fun (id, spec, fault) ->
        let argv =
          [ self; "worker"; "--cmd"; cmd; "--vectors"; string_of_int vectors;
            "--evals"; string_of_int evals ]
          @ (match fault with Some f -> [ "--fault"; f ] | None -> [])
          @ [ spec ]
        in
        Supervisor.job ~env:(obs_job_env obs_dir id) ~id (Array.of_list argv))
      entries
  in
  let cfg =
    {
      Supervisor.default_config with
      Supervisor.parallel;
      timeout_s = job_timeout;
      grace_s = grace;
      retries;
      backoff_base_s = backoff;
    }
  in
  let journal = or_diag (Journal.create ?resume:resume_state journal_path) in
  let summary =
    Fun.protect
      ~finally:(fun () -> Journal.close journal)
      (fun () ->
        Supervisor.with_signal_drain (fun stop ->
            or_diag
              (Supervisor.run ~stop ~on_event:print_batch_event cfg ~journal
                 ?resume:resume_state jobs)))
  in
  Printf.printf
    "batch summary: ok=%d failed=%d degraded=%d skipped=%d interrupted=%d%s\n"
    summary.Supervisor.ok summary.Supervisor.failed summary.Supervisor.degraded
    summary.Supervisor.skipped summary.Supervisor.interrupted
    (if summary.Supervisor.drained then " (drained: interrupted by operator)"
     else "");
  (match results with
  | None -> ()
  | Some path ->
    (* derived from the journal alone, so an interrupted-then-resumed
       batch renders bit-identically to an uninterrupted one *)
    let st = or_diag (Journal.replay journal_path) in
    let doc =
      match Journal.final_results_json st with
      | Ser_util.Json.Obj fields ->
        Ser_util.Json.Obj (fields @ obs_results_field obs_dir entries)
      | other -> other
    in
    let oc = open_out path in
    output_string oc (Ser_util.Json.to_string doc);
    output_string oc "\n";
    close_out oc;
    Printf.printf "wrote %s\n" path);
  `Ok exit_ok

(* ------------------------------------------------------------------ *)

open Cmdliner

let circuit_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT"
         ~doc:"Benchmark name (c17, c432, ...) or .bench file path.")

let vdds_arg =
  Arg.(value & opt (list float) [] & info [ "vdds" ] ~docv:"V,..."
         ~doc:"Supply-voltage menu (default 0.8,1.0,1.2).")

let vths_arg =
  Arg.(value & opt (list float) [] & info [ "vths" ] ~docv:"V,..."
         ~doc:"Threshold-voltage menu (default 0.1,0.2,0.3).")

let jobs_arg =
  Arg.(value & opt int (-1) & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for parallel sections: 0 autodetects from the \
               machine, 1 forces sequential execution, N>1 pins the pool \
               width. Defaults to the SERTOOL_JOBS environment variable, \
               else autodetection. Results are bit-identical for every \
               setting.")

let obs_args =
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a Chrome trace-event timeline of the run and write \
                 it to FILE at exit (open with Perfetto or chrome://tracing).")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write a JSON snapshot of all internal counters, gauges and \
                 histograms to FILE at exit.")
  in
  Term.(const (fun t m -> (t, m)) $ trace $ metrics)

let obs_dir_arg =
  Arg.(value & opt (some string) None & info [ "obs-dir" ] ~docv:"DIR"
         ~doc:"Collect per-job trace and metrics files from batch workers \
               into DIR (sets SERTOOL_TRACE/SERTOOL_METRICS in each child); \
               the results JSON references them under an \"obs\" field.")

let info_t =
  Cmd.v (Cmd.info "info" ~doc:"Print circuit statistics")
    Term.(ret (const info_cmd $ circuit_arg))

let generate_t =
  let bench_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Benchmark name.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let format =
    Arg.(value & opt string "bench" & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: bench, verilog or dot.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to a file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Emit a benchmark circuit (.bench, Verilog or Graphviz)")
    Term.(ret (const generate_cmd $ bench_name $ seed $ format $ output))

let analyze_t =
  let vectors =
    Arg.(value & opt int 10_000 & info [ "vectors" ] ~doc:"Random vectors for P_ij.")
  in
  let charge =
    Arg.(value & opt float 16. & info [ "charge" ] ~doc:"Injected charge, fC.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Softest gates to list.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Export the full report as JSON.")
  in
  let dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Export the circuit as Graphviz with unreliability heat.")
  in
  Cmd.v (Cmd.info "analyze" ~doc:"ASERTA soft-error tolerance analysis")
    Term.(ret (const analyze_cmd $ jobs_arg $ obs_args $ circuit_arg $ vectors
               $ charge $ top $ vdds_arg $ vths_arg $ json $ dot))

let optimize_t =
  let vectors =
    Arg.(value & opt int 4000 & info [ "vectors" ] ~doc:"Random vectors for P_ij.")
  in
  let evals =
    Arg.(value & opt int 120 & info [ "evals" ] ~doc:"Nullspace-search cost evaluations.")
  in
  let greedy =
    Arg.(value & opt int 2 & info [ "greedy" ] ~doc:"Greedy refinement passes.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Dump the optimized cell assignment.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Export the optimization report as JSON.")
  in
  let budget_evals =
    Arg.(value & opt (some int) None & info [ "budget-evals" ] ~docv:"N"
           ~doc:"Hard cap on cost evaluations; the best-so-far incumbent is \
                 returned (flagged degraded) when it is hit.")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Wall-clock deadline; the best-so-far incumbent is returned \
                 (flagged degraded) when it expires.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Resume from FILE if it exists, and write the final \
                 assignment back to it (JSON incumbent).")
  in
  Cmd.v (Cmd.info "optimize" ~doc:"SERTOPT soft-error tolerance optimization")
    Term.(ret (const optimize_cmd $ jobs_arg $ obs_args $ circuit_arg $ vectors
               $ evals $ greedy $ vdds_arg $ vths_arg $ budget_evals $ timeout
               $ checkpoint $ output $ json))

let export_deck_t =
  let strike =
    Arg.(required & opt (some string) None & info [ "strike" ] ~docv:"GATE"
           ~doc:"Name of the struck gate.")
  in
  let vector =
    Arg.(value & opt (some string) None & info [ "vector" ] ~docv:"BITS"
           ~doc:"Input vector as a 0/1 string (random if omitted).")
  in
  let charge =
    Arg.(value & opt float 16. & info [ "charge" ] ~doc:"Injected charge, fC.")
  in
  let output =
    Arg.(value & opt string "strike.sp" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output SPICE deck.")
  in
  Cmd.v
    (Cmd.info "export-deck"
       ~doc:"Emit a standalone SPICE deck for one strike scenario \
             (cross-validation in ngspice/HSPICE)")
    Term.(ret (const export_deck_cmd $ circuit_arg $ strike $ vector $ charge
               $ output))

let characterize_t =
  let kind =
    Arg.(value & opt string "NAND" & info [ "kind" ] ~doc:"Gate kind.")
  in
  let fanin = Arg.(value & opt int 2 & info [ "fanin" ] ~doc:"Fan-in.") in
  let size = Arg.(value & opt float 1.0 & info [ "size" ] ~doc:"Size multiplier.") in
  let length = Arg.(value & opt float 70. & info [ "length" ] ~doc:"Channel length, nm.") in
  let vdd = Arg.(value & opt float 1.0 & info [ "vdd" ] ~doc:"Supply, V.") in
  let vth = Arg.(value & opt float 0.2 & info [ "vth" ] ~doc:"Threshold, V.") in
  Cmd.v (Cmd.info "characterize" ~doc:"Electrically characterise one cell")
    Term.(ret (const characterize_cmd $ kind $ fanin $ size $ length $ vdd $ vth))

let rate_t =
  let vectors =
    Arg.(value & opt int 4000 & info [ "vectors" ] ~doc:"Random vectors for P_ij.")
  in
  let clock =
    Arg.(value & opt (some float) None & info [ "clock" ] ~docv:"PS"
           ~doc:"Clock period (default 1.2x critical delay).")
  in
  let q_slope =
    Arg.(value & opt float 6. & info [ "q-slope" ]
           ~doc:"Charge-collection slope of the spectrum, fC.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Contributors to list.")
  in
  Cmd.v
    (Cmd.info "rate"
       ~doc:"Soft-error rate (FIT) over a particle charge spectrum")
    Term.(ret (const rate_cmd $ jobs_arg $ obs_args $ circuit_arg $ vectors
               $ clock $ q_slope $ top))

let harden_t =
  let method_ =
    Arg.(value & opt string "tmr" & info [ "method" ] ~docv:"M"
           ~doc:"Hardening transform: tmr, ptmr (partial, softest gates) or ced.")
  in
  let fraction =
    Arg.(value & opt float 0.2 & info [ "fraction" ]
           ~doc:"Gate fraction protected by ptmr.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the hardened netlist (.bench) to a file.")
  in
  Cmd.v
    (Cmd.info "harden"
       ~doc:"Apply a classical structural hardening transform (TMR, partial \
             TMR, duplication+CED)")
    Term.(ret (const harden_cmd $ jobs_arg $ circuit_arg $ method_ $ fraction
               $ output))

let pipeline_t =
  let stages =
    Arg.(value & opt int 2 & info [ "stages" ] ~doc:"Pipeline depth.")
  in
  let clock =
    Arg.(value & opt (some float) None & info [ "clock" ] ~docv:"PS"
           ~doc:"Clock period in ps (default: minimum feasible).")
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:"Slice a circuit into pipeline stages and report the system SER")
    Term.(ret (const pipeline_cmd $ jobs_arg $ circuit_arg $ stages $ clock))

let timing_t =
  let n_paths =
    Arg.(value & opt int 3 & info [ "paths" ] ~doc:"Worst paths to report.")
  in
  Cmd.v
    (Cmd.info "timing" ~doc:"Static timing report with the K worst paths")
    Term.(ret (const timing_cmd $ jobs_arg $ circuit_arg $ n_paths $ vdds_arg
               $ vths_arg))

let export_lib_t =
  let kind =
    Arg.(value & opt string "NAND" & info [ "kind" ] ~doc:"Gate kind.")
  in
  let fanin = Arg.(value & opt int 2 & info [ "fanin" ] ~doc:"Fan-in.") in
  let output =
    Arg.(value & opt string "ser70.lib" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output Liberty file.")
  in
  Cmd.v
    (Cmd.info "export-lib"
       ~doc:"Dump the characterised cell variants of one logic function \
             as a Liberty (.lib) file")
    Term.(ret (const export_lib_cmd $ kind $ fanin $ output))

let worker_t =
  let cmd =
    Arg.(value & opt string "analyze" & info [ "cmd" ] ~docv:"CMD"
           ~doc:"Worker command: analyze or optimize.")
  in
  let vectors =
    Arg.(value & opt int 2000 & info [ "vectors" ] ~doc:"Random vectors for P_ij.")
  in
  let evals =
    Arg.(value & opt int 60 & info [ "evals" ] ~doc:"Optimizer cost evaluations.")
  in
  let fault =
    Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"F"
           ~doc:"Test-only fault injection: hang, crash, oom, garbage, \
                 exit:N or flaky:N (crash on attempts below N).")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"(internal) Run one job as a batch-supervisor child process and \
             emit the result as JSON on stdout")
    Term.(ret (const worker_cmd $ circuit_arg $ cmd $ vectors $ evals $ fault))

let batch_t =
  let manifest =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MANIFEST"
           ~doc:"Manifest file: one job per line, \"SPEC [fault=F]\".")
  in
  let cmd =
    Arg.(value & opt string "analyze" & info [ "cmd" ] ~docv:"CMD"
           ~doc:"Per-job command: analyze or optimize.")
  in
  let vectors =
    Arg.(value & opt int 2000 & info [ "vectors" ] ~doc:"Random vectors for P_ij.")
  in
  let evals =
    Arg.(value & opt int 60 & info [ "evals" ]
           ~doc:"Optimizer cost evaluations (optimize jobs).")
  in
  let journal =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
           ~doc:"Write-ahead journal path (default MANIFEST.journal).")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Resume a previous run of the same manifest: jobs already \
                 journalled as done are skipped bit-identically.")
  in
  let parallel =
    Arg.(value & opt int 1 & info [ "parallel" ] ~docv:"N"
           ~doc:"Concurrent worker processes.")
  in
  let job_timeout =
    Arg.(value & opt float 300. & info [ "timeout-per-job" ] ~docv:"SECONDS"
           ~doc:"Per-attempt watchdog (monotonic clock): SIGTERM on expiry, \
                 SIGKILL after the grace period.")
  in
  let grace =
    Arg.(value & opt float 2. & info [ "grace" ] ~docv:"SECONDS"
           ~doc:"SIGTERM-to-SIGKILL grace period.")
  in
  let retries =
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N"
           ~doc:"Retries per job for transient failures (crash, hang, \
                 garbage output, unexplained exit) with exponential backoff; \
                 after the budget the job is recorded as degraded and the \
                 batch continues.")
  in
  let backoff =
    Arg.(value & opt float 1. & info [ "backoff" ] ~docv:"SECONDS"
           ~doc:"Base retry delay; grows exponentially with deterministic \
                 jitter.")
  in
  let results =
    Arg.(value & opt (some string) None & info [ "results" ] ~docv:"FILE"
           ~doc:"Write the final per-job results (derived from the journal) \
                 as JSON.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run ASERTA/SERTOPT over a manifest of circuits with \
             crash-contained worker processes, a watchdog, retry/backoff and \
             a resumable write-ahead journal")
    Term.(ret (const batch_cmd $ manifest $ cmd $ vectors $ evals $ journal
               $ resume $ parallel $ job_timeout $ grace $ retries $ backoff
               $ results $ obs_args $ obs_dir_arg))

let main =
  Cmd.group
    (Cmd.info "sertool" ~version:"1.0.0"
       ~doc:"Soft-error tolerance analysis (ASERTA) and optimization (SERTOPT) \
             of combinational nanometer circuits")
    [ info_t; generate_t; analyze_t; optimize_t; rate_t; timing_t; pipeline_t;
      harden_t; characterize_t; export_deck_t; export_lib_t; batch_t;
      worker_t ]

(* Batch workers inherit SERTOOL_TRACE/SERTOOL_METRICS from the supervisor
   so their observability lands in per-job files without extra flags. *)
let () = Obs.install_from_env ()
let () = exit (Cmd.eval' main)
