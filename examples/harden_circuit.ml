(* Hardening walkthrough: run SERTOPT on a benchmark under three
   different weight profiles and show the reliability / energy / area
   trade-off a designer navigates with Eq. 5.

     dune exec examples/harden_circuit.exe [circuit] *)

module Opt = Sertopt.Optimizer
module Cost = Sertopt.Cost

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c432" in
  let c = Ser_circuits.Iscas.load name in
  let lib =
    Ser_cell.Library.create
      ~axes:
        (Ser_cell.Library.restrict ~vdds:[ 0.8; 1.0; 1.2 ]
           ~vths:[ 0.1; 0.2; 0.3 ] Ser_cell.Library.default_axes)
      ()
  in
  let baseline = Opt.size_for_speed lib c in
  let aserta = { Aserta.Analysis.default_config with Aserta.Analysis.vectors = 3000 } in
  (* the logical-masking data is shared by all three runs *)
  let masking = Aserta.Analysis.compute_masking aserta c in

  Printf.printf "hardening %s under three Eq-5 weight profiles\n\n" name;
  let tbl =
    Ser_util.Ascii_table.create
      ~aligns:[ Ser_util.Ascii_table.Left ]
      [ "profile"; "dU"; "area"; "energy"; "delay"; "evals"; "seconds" ]
  in
  let run label weights =
    let t0 = Unix.gettimeofday () in
    let config =
      {
        Opt.default_config with
        Opt.aserta;
        weights;
        max_evals = 100;
        greedy_passes = 1;
        greedy_gates = 120;
      }
    in
    let r = Opt.optimize ~config ~masking lib baseline in
    let rat = Cost.ratios ~baseline:r.Opt.baseline_metrics r.Opt.optimized_metrics in
    Ser_util.Ascii_table.add_row tbl
      [
        label;
        Printf.sprintf "%.1f%%" (100. *. Opt.unreliability_reduction r);
        Printf.sprintf "%.2fX" rat.Cost.area;
        Printf.sprintf "%.2fX" rat.Cost.energy;
        Printf.sprintf "%.2fX" rat.Cost.delay;
        string_of_int r.Opt.evals;
        Printf.sprintf "%.1f" (Unix.gettimeofday () -. t0);
      ]
  in
  run "reliability-first"
    { Cost.w_unrel = 1.0; w_delay = 0.2; w_energy = 0.02; w_area = 0.02 };
  run "balanced (default)" Cost.default_weights;
  run "power-conscious"
    { Cost.w_unrel = 1.0; w_delay = 0.2; w_energy = 0.8; w_area = 0.3 };
  Ser_util.Ascii_table.print tbl;
  Printf.printf
    "\nthe designer changes the ratio of the W_i weights to move along\n\
     the reliability/power/area trade-off (Section 4 of the paper)\n"
