(* Glitch playground: strike an inverter chain on the transient
   simulator and watch Eq. 1 emerge from device physics — the glitch
   narrows (or dies) at each slow stage and passes wide stages
   untouched.

     dune exec examples/glitch_playground.exe *)

module P = Ser_device.Cell_params
module Engine = Ser_spice.Engine
module Gate = Ser_netlist.Gate

let () =
  (* chain of five inverters, alternating fast (size 4) and slow
     (length 150 nm) stages, each loaded by the next *)
  let cells =
    [|
      P.v ~size:1.0 Gate.Not 1;
      P.v ~length:150. Gate.Not 1;
      P.v ~size:4.0 Gate.Not 1;
      P.v ~length:150. Gate.Not 1;
      P.v ~size:1.0 Gate.Not 1;
    |]
  in
  let b = Engine.Build.create () in
  let ext = Engine.Build.ext b in
  let nodes =
    Array.make (Array.length cells) 0
  in
  let () =
    let prev = ref (Engine.Ext ext) in
    Array.iteri
      (fun i cell ->
        let n = Ser_spice.Elaborate.add_cell b cell [| !prev |] in
        nodes.(i) <- n;
        prev := Engine.Node n)
      cells
  in
  Engine.Build.add_cap b nodes.(Array.length nodes - 1) 1.0;
  let net = Engine.Build.finish b in

  (* input low; strike the first inverter's output (logic high), which
     removes charge and digs a negative glitch *)
  let init = Engine.dc_levels net ~ext_values:[| false |] in
  let charge = 24. in
  let injections =
    [ Engine.{ inj_node = nodes.(0); charge; t_start = 10.; into_node = false } ]
  in
  let trace =
    Engine.simulate net ~inputs:[| Ser_spice.Waveform.dc 0. |] ~init ~injections
      ~dt:0.25 ~probes:nodes ~t_end:800. ()
  in

  Printf.printf "strike of %.0f fC at stage 1 of a 5-inverter chain:\n\n" charge;
  Printf.printf "%-7s %-22s %-12s %-14s %-10s\n" "stage" "cell" "nominal (V)"
    "glitch (ps)" "peak dV";
  Array.iteri
    (fun i cell ->
      let nominal = init.(nodes.(i)) in
      let values = trace.Engine.voltages.(i) in
      let w =
        Ser_spice.Measure.glitch_width ~times:trace.Engine.times ~values
          ~nominal ~vdd:cell.P.vdd
      in
      let peak =
        Ser_spice.Measure.peak_excursion ~times:trace.Engine.times ~values
          ~nominal
      in
      Printf.printf "%-7d %-22s %-12.2f %-14.1f %-10.2f\n" (i + 1)
        (P.to_string cell) nominal w peak)
    cells;

  (* compare against the paper's Eq. 1 with the analytic stage delays *)
  Printf.printf "\nEq. 1 prediction with analytic delays:\n";
  let w = ref (Ser_spice.Char.generated_glitch_width cells.(0) ~cload:1.0 ~charge ~output_low:false) in
  Printf.printf "  generated width %.1f ps\n" !w;
  for i = 1 to Array.length cells - 1 do
    let cload =
      if i = Array.length cells - 1 then 1.0
      else Ser_device.Gate_model.input_cap cells.(i + 1)
    in
    let d = Ser_device.Gate_model.delay cells.(i) ~input_ramp:20. ~cload in
    w := Aserta.Glitch.propagate ~delay:d ~width:!w;
    Printf.printf "  after stage %d (d = %.1f ps): %.1f ps\n" (i + 1) d !w
  done
