(* Soft-spot analysis of a realistic netlist: rank the gates whose
   strikes matter most, explain WHY via the three masking mechanisms,
   and find each soft gate's critical charge.

     dune exec examples/soft_spot_analysis.exe [circuit] *)

module Circuit = Ser_netlist.Circuit
module Analysis = Aserta.Analysis
module Library = Ser_cell.Library

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c880" in
  let c = Ser_circuits.Iscas.load name in
  let lib = Library.create () in
  let asg = Sertopt.Optimizer.size_for_speed lib c in
  let config = { Analysis.default_config with Analysis.vectors = 4000 } in
  let r = Analysis.run ~config lib asg in
  let levels = Circuit.levels_to_outputs c in

  Printf.printf "soft-spot analysis of %s (%d gates, U = %.1f)\n\n"
    c.Circuit.name (Circuit.gate_count c) r.Analysis.total;

  let idx = Array.init (Circuit.node_count c) Fun.id in
  Array.sort
    (fun a b -> compare r.Analysis.unreliability.(b) r.Analysis.unreliability.(a))
    idx;

  let tbl =
    Ser_util.Ascii_table.create
      ~aligns:[ Ser_util.Ascii_table.Left ]
      [ "gate"; "U_i"; "share"; "lv->PO"; "max P_ij"; "w_gen"; "Q_crit (fC)" ]
  in
  Array.iteri
    (fun rank id ->
      if rank < 15 then begin
        let cell = Ser_sta.Assignment.get asg id in
        let node_cap =
          r.Analysis.timing.Ser_sta.Timing.loads.(id)
          +. Library.output_cap lib cell
        in
        let qcrit =
          Ser_device.Gate_model.critical_charge cell ~node_cap ~output_low:true
        in
        let max_p =
          Array.fold_left Float.max 0.
            r.Analysis.masking.Analysis.path_probs.Ser_logicsim.Probs.p.(id)
        in
        Ser_util.Ascii_table.add_row tbl
          [
            (Circuit.node c id).Circuit.name;
            Printf.sprintf "%.1f" r.Analysis.unreliability.(id);
            Printf.sprintf "%.1f%%"
              (100. *. r.Analysis.unreliability.(id) /. r.Analysis.total);
            string_of_int levels.(id);
            Printf.sprintf "%.2f" max_p;
            Printf.sprintf "%.1f" r.Analysis.gen_width.(id);
            Printf.sprintf "%.1f" qcrit;
          ]
      end)
    idx;
  Ser_util.Ascii_table.print tbl;

  (* How much of the unreliability sits right at the latches? *)
  let near k =
    Array.to_list idx
    |> List.filter (fun id -> (not (Circuit.is_input c id)) && levels.(id) >= 0 && levels.(id) <= k)
    |> List.fold_left (fun acc id -> acc +. r.Analysis.unreliability.(id)) 0.
  in
  Printf.printf
    "\ncumulative share by distance from the primary outputs:\n";
  List.iter
    (fun k ->
      Printf.printf "  within %d levels: %.0f%%\n" k
        (100. *. near k /. r.Analysis.total))
    [ 0; 1; 2; 4; 8 ];
  Printf.printf
    "\n(the closer to a latch a strike lands, the fewer gates can mask it\n\
    \ electrically or logically -- the paper's motivation for SERTOPT)\n"
