(* Pipeline SER walkthrough: slice a benchmark into pipeline stages and
   watch the two introduction-section effects — higher clock rates and
   deeper pipelines both raise the soft-error rate.

     dune exec examples/pipeline_ser.exe [circuit] *)

module Pipeline = Ser_pipeline.Pipeline

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c880" in
  let c = Ser_circuits.Iscas.load name in
  let lib = Ser_cell.Library.create () in
  let aserta =
    { Aserta.Analysis.default_config with Aserta.Analysis.vectors = 1500 }
  in
  Printf.printf "pipelining %s (%d gates, depth %d)\n\n" name
    (Ser_netlist.Circuit.gate_count c)
    (Ser_netlist.Circuit.depth c);
  List.iter
    (fun k ->
      let slices = Pipeline.split_by_levels c ~stages:k in
      let p = Pipeline.create ~lib slices in
      let r = Pipeline.analyze ~aserta ~lib p in
      Printf.printf
        "%d stage(s): min period %6.0f ps (%.2f GHz), %3d flip-flops, SER %8.2f\n"
        k r.Pipeline.min_period
        (1000. /. r.Pipeline.min_period)
        (Pipeline.flipflop_count p) r.Pipeline.total;
      List.iter
        (fun (sn, v) -> Printf.printf "    %-22s %8.2f\n" sn v)
        r.Pipeline.stage_ser)
    [ 1; 2; 4 ];
  Printf.printf
    "\nthe throughput of deeper pipelines is paid for in soft-error rate:\n\
     every strike lands closer to a latch (less masking) and the faster\n\
     clock captures a larger fraction of the surviving glitches\n"
