(* Quickstart: build a small circuit with the Builder API, run ASERTA,
   and read the per-gate unreliability report.

     dune exec examples/quickstart.exe *)

module Circuit = Ser_netlist.Circuit
module Gate = Ser_netlist.Gate

let () =
  (* A 2-bit equality comparator with an enable: out = en AND (a == b). *)
  let b = Circuit.Builder.create ~name:"eq2" () in
  let a0 = Circuit.Builder.add_input b "a0" in
  let a1 = Circuit.Builder.add_input b "a1" in
  let b0 = Circuit.Builder.add_input b "b0" in
  let b1 = Circuit.Builder.add_input b "b1" in
  let en = Circuit.Builder.add_input b "en" in
  let x0 = Circuit.Builder.add_gate b ~name:"x0" Gate.Xnor [ a0; b0 ] in
  let x1 = Circuit.Builder.add_gate b ~name:"x1" Gate.Xnor [ a1; b1 ] in
  let eq = Circuit.Builder.add_gate b ~name:"eq" Gate.And [ x0; x1 ] in
  let out = Circuit.Builder.add_gate b ~name:"out" Gate.And [ eq; en ] in
  Circuit.Builder.set_output b out;
  let c = Circuit.Builder.build_exn b in

  (* The default standard-cell library and a nominal assignment. *)
  let lib = Ser_cell.Library.create () in
  let asg = Ser_sta.Assignment.uniform lib c in

  (* ASERTA: 10 000 random vectors for logical masking, 16 fC strikes. *)
  let r = Aserta.Analysis.run lib asg in

  Printf.printf "circuit %s: total unreliability U = %.2f\n\n"
    c.Circuit.name r.Aserta.Analysis.total;
  Printf.printf "%-6s %-10s %-10s %-10s\n" "gate" "U_i" "w_gen(ps)" "P(out)";
  Array.iter
    (fun (nd : Circuit.node) ->
      if nd.kind <> Gate.Input then
        Printf.printf "%-6s %-10.2f %-10.1f %-10.3f\n" nd.name
          r.Aserta.Analysis.unreliability.(nd.id)
          r.Aserta.Analysis.gen_width.(nd.id)
          r.Aserta.Analysis.masking.Aserta.Analysis.path_probs.Ser_logicsim.Probs.p.(nd.id).(0))
    c.Circuit.nodes;

  (* Gates deep in the cone are logically masked more often; the output
     gate has P = 1 by definition. *)
  let po_u = r.Aserta.Analysis.unreliability.(out) in
  Printf.printf "\nthe output gate carries %.0f%% of the total unreliability\n"
    (100. *. po_u /. r.Aserta.Analysis.total)
