(* Benchmark harness: regenerates every table and figure of the paper
   plus the ablations from DESIGN.md, and runs bechamel
   micro-benchmarks of the core kernels.

   Usage:
     dune exec bench/main.exe                 -- everything, quick profile
     dune exec bench/main.exe -- fig1         -- one experiment
     dune exec bench/main.exe -- table1-full  -- paper-scale budgets
     dune exec bench/main.exe -- micro        -- bechamel kernels *)

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let fig1 () =
  section "Figure 1 (generated glitch width vs gate knobs)";
  print_string (Ser_repro.Fig12.render (Ser_repro.Fig12.fig1 ()))

let fig2 () =
  section "Figure 2 (propagated glitch width vs gate knobs)";
  print_string (Ser_repro.Fig12.render (Ser_repro.Fig12.fig2 ()))

let fig3 ?(vectors = 5) () =
  section "Figure 3 (ASERTA vs golden transient, per-gate unreliability)";
  print_string (Ser_repro.Fig3.render (Ser_repro.Fig3.run ~vectors ()))

let table1 ?(effort = Ser_repro.Table1.Quick) ?(with_golden = false) ?only () =
  section "Table 1 (SERTOPT optimization results)";
  print_string
    (Ser_repro.Table1.render (Ser_repro.Table1.run ~effort ~with_golden ?only ()))

let runtime () =
  section "Runtime comparison (Section 5)";
  print_string (Ser_repro.Runtime.render (Ser_repro.Runtime.run ()))

let alternatives () =
  section "Extension: hardening alternatives (TMR / CED vs SERTOPT)";
  print_string (Ser_repro.Alternatives.render (Ser_repro.Alternatives.run ()))

let variation () =
  section "Extension: process-variation robustness";
  print_string (Ser_repro.Variation.render (Ser_repro.Variation.run ()))

let ser_rate () =
  section "Extension: charge-spectrum SER (FIT)";
  print_string (Ser_repro.Rate_study.render (Ser_repro.Rate_study.run ()))

let pipeline () =
  section "Extension: pipeline trends (frequency & super-pipelining)";
  print_string (Ser_repro.Pipeline_study.render (Ser_repro.Pipeline_study.run ()))

let ablations () =
  section "Ablation: Eq-2 successor split";
  print_string (Ser_repro.Ablation.pi_split ());
  section "Ablation: sample glitch widths";
  print_string (Ser_repro.Ablation.sample_count ());
  section "Ablation: optimizer composition";
  print_string (Ser_repro.Ablation.optimizer_variants ());
  section "Ablation: P_ij vector convergence";
  print_string (Ser_repro.Ablation.vector_convergence ());
  section "Ablation: injected charge";
  print_string (Ser_repro.Ablation.charge_sweep ());
  section "Ablation: masking backend";
  print_string (Ser_repro.Ablation.masking_backend ());
  section "Ablation: glitch propagation model";
  print_string (Ser_repro.Ablation.glitch_model ())

(* ------------------------------------------------------------------ *)
(* bechamel micro-benchmarks of the kernels                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (bechamel)";
  let c432 = Ser_circuits.Iscas.load "c432" in
  let lib = Ser_cell.Library.create () in
  let asg = Ser_sta.Assignment.uniform lib c432 in
  let cfg = { Aserta.Analysis.default_config with Aserta.Analysis.vectors = 500 } in
  let masking = Aserta.Analysis.compute_masking cfg c432 in
  let timing = Ser_sta.Timing.analyze lib asg in
  let rng = Ser_rng.Rng.create 99 in
  let t_matrix, _ =
    let paths = Ser_sta.Paths.k_worst_paths asg timing ~k:32 in
    Ser_sta.Paths.topology_matrix asg paths
  in
  let vec =
    Array.init t_matrix.Ser_linalg.Matrix.cols (fun i ->
        float_of_int (i mod 7) -. 3.)
  in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"eq1-glitch-propagate" (Staged.stage (fun () ->
          ignore (Aserta.Glitch.propagate ~delay:20. ~width:35.)));
      Test.make ~name:"sta-c432" (Staged.stage (fun () ->
          ignore (Ser_sta.Timing.analyze lib asg)));
      Test.make ~name:"aserta-electrical-c432" (Staged.stage (fun () ->
          ignore (Aserta.Analysis.run_electrical cfg lib asg masking)));
      Test.make ~name:"fault-sim-62-vectors-c432" (Staged.stage (fun () ->
          ignore
            (Ser_logicsim.Probs.path_probabilities ~rng ~vectors:62 c432)));
      Test.make ~name:"nullspace-projection-32paths" (Staged.stage (fun () ->
          ignore (Ser_linalg.Matrix.project_onto_nullspace t_matrix vec)));
      Test.make ~name:"logic-sim-62-vectors-c432" (Staged.stage (fun () ->
          ignore (Ser_logicsim.Bitsim.random_batch rng c432 ~n_patterns:62)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let grouped = Test.make_grouped ~name:"kernels" tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let est =
        match Analyze.OLS.estimates result with
        | Some (e :: _) -> e
        | Some [] | None -> Float.nan
      in
      rows := (name, est) :: !rows)
    ols;
  List.iter
    (fun (name, est) -> Printf.printf "  %-40s %14.1f ns/run\n%!" name est)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* parallel runtime: sequential vs pool, with machine-readable output   *)
(* ------------------------------------------------------------------ *)

let par_bench () =
  section "Parallel runtime (lib/par): sequential vs pool";
  let jobs = Ser_par.Par.jobs () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let checksum_probs (pp : Ser_logicsim.Probs.path_probs) =
    Array.fold_left
      (fun acc row -> Array.fold_left ( +. ) acc row)
      0. pp.Ser_logicsim.Probs.p
  in
  (* each case builds its whole world from scratch so the two runs are
     exact replicas; the returned checksum must be bit-identical *)
  let mc name vectors =
    ( Printf.sprintf "mc-path-probs-%s" name,
      fun () ->
        let c = Ser_circuits.Iscas.load name in
        let rng = Ser_rng.Rng.create 7 in
        checksum_probs
          (Ser_logicsim.Probs.path_probabilities ~rng ~vectors c) )
  in
  let aserta name vectors =
    ( Printf.sprintf "aserta-%s" name,
      fun () ->
        let c = Ser_circuits.Iscas.load name in
        let lib = Ser_cell.Library.create () in
        let asg = Ser_sta.Assignment.uniform lib c in
        let cfg =
          { Aserta.Analysis.default_config with Aserta.Analysis.vectors }
        in
        (Aserta.Analysis.run ~config:cfg lib asg).Aserta.Analysis.total )
  in
  let cases =
    [ mc "c2670" 256; mc "c5315" 128; aserta "c880" 300; aserta "c1355" 200 ]
  in
  (* The pool stats accumulate process-wide, so the two phases are run
     back to back with a reset in between: mixing them in one
     accumulator is what used to make the report claim
     [sequential_sections = sections] (every sequential-phase section
     inflated the count) even while the pool was demonstrably stealing
     chunks at -j > 1. *)
  Ser_par.Par.reset_stats ();
  Ser_par.Par.set_jobs 1;
  let seq_runs = List.map (fun (name, f) -> (name, time f)) cases in
  let seq_pool = Ser_par.Par.stats_json () in
  Ser_par.Par.reset_stats ();
  Ser_par.Par.set_jobs jobs;
  let par_runs = List.map (fun (name, f) -> (name, time f)) cases in
  let par_pool = Ser_par.Par.stats_json () in
  let rows =
    List.map2
      (fun (name, (seq_v, seq_s)) (_, (par_v, par_s)) ->
        if Int64.bits_of_float seq_v <> Int64.bits_of_float par_v then begin
          Printf.eprintf
            "FATAL: %s not deterministic across worker counts (%.17g vs %.17g)\n"
            name seq_v par_v;
          exit 1
        end;
        let speedup = seq_s /. Float.max 1e-9 par_s in
        Printf.printf "  %-24s seq %8.3f s   %d jobs %8.3f s   speedup %5.2fx\n%!"
          name seq_s jobs par_s speedup;
        Ser_util.Json.(
          Obj
            [
              ("name", Str name);
              ("seq_s", Num seq_s);
              ("par_s", Num par_s);
              ("speedup", Num speedup);
              ("checksum", Num seq_v);
            ]))
      seq_runs par_runs
  in
  (* the hardware context matters: on a single-core container the pool
     cannot beat sequential, and the numbers must say so honestly *)
  let recommended = Ser_par.Par.recommended_jobs () in
  let reasoning =
    Printf.sprintf
      "recommended_domains is Domain.recommended_domain_count on this host \
       (%d); it only seeds the default width. An explicit -j N > 1 always \
       engages the pool (this run: %d jobs in the parallel phase) — a \
       section runs inline only when the effective width is <= 1 or it is \
       nested inside another section. See pool_parallel_phase.sections vs \
       pool_sequential_phase.sequential_sections for the split."
      recommended jobs
  in
  let doc =
    Ser_util.Json.(
      Obj
        [
          ("jobs", int jobs);
          ("recommended_domains", int recommended);
          ("recommended_domains_reasoning", Str reasoning);
          ("cases", List rows);
          ("pool_sequential_phase", seq_pool);
          ("pool_parallel_phase", par_pool);
          ("pool", par_pool);
          ("metrics", Ser_obs.Obs.Metrics.snapshot ());
        ])
  in
  let oc = open_out "BENCH_par.json" in
  output_string oc (Ser_util.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote BENCH_par.json (jobs=%d, recommended=%d)\n" jobs
    recommended

(* ------------------------------------------------------------------ *)
(* SERTOPT: full-recompute vs incremental (lib/incr) evaluation        *)
(* ------------------------------------------------------------------ *)

let sertopt_bench ?(smoke = false) () =
  section "SERTOPT evaluation engine: full recompute vs incremental";
  let module Opt = Sertopt.Optimizer in
  let module Cost = Sertopt.Cost in
  let module Analysis = Aserta.Analysis in
  let module Assignment = Ser_sta.Assignment in
  let module Circuit = Ser_netlist.Circuit in
  let module Cell_params = Ser_device.Cell_params in
  let jobs = Ser_par.Par.jobs () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* (name, vectors, max_evals, greedy_gates); identical seeds and
     configs for both modes, only [eval_mode] differs *)
  let cases =
    if smoke then [ ("c432", 300, 4, 4) ]
    else [ ("c880", 400, 8, 10); ("c1355", 400, 8, 10); ("c2670", 400, 8, 24) ]
  in
  Ser_par.Par.reset_stats ();
  let rows =
    List.map
      (fun (name, vectors, max_evals, greedy_gates) ->
        let c = Ser_circuits.Iscas.load name in
        let lib = Ser_cell.Library.create () in
        let baseline = Assignment.uniform lib c in
        let aserta = { Analysis.default_config with Analysis.vectors } in
        (* masking is assignment-independent: computed once, shared by
           both modes, excluded from the timed region *)
        let masking = Analysis.compute_masking aserta c in
        let config mode =
          {
            Opt.default_config with
            Opt.aserta;
            eval_mode = mode;
            max_evals;
            greedy_gates;
            greedy_passes = 1;
            annealing_steps = 0;
          }
        in
        let run mode () =
          Opt.optimize ~config:(config mode) ~masking lib baseline
        in
        let rf, full_s = time (run Opt.Full_recompute) in
        let ri, incr_s = time (run Opt.Incremental) in
        (* the two modes must be bit-identical end to end: same final
           assignment, same metrics, same improving-cost trace, same
           evaluation count *)
        let bits = Int64.bits_of_float in
        let fail fmt =
          Printf.ksprintf
            (fun msg ->
              Printf.eprintf "FATAL: %s: %s\n" name msg;
              exit 1)
            fmt
        in
        if rf.Opt.evals <> ri.Opt.evals then
          fail "eval counts differ (%d vs %d)" rf.Opt.evals ri.Opt.evals;
        if
          List.length rf.Opt.cost_trace <> List.length ri.Opt.cost_trace
          || not
               (List.for_all2
                  (fun a b -> bits a = bits b)
                  rf.Opt.cost_trace ri.Opt.cost_trace)
        then fail "cost traces differ";
        let mf = rf.Opt.optimized_metrics and mi = ri.Opt.optimized_metrics in
        if
          bits mf.Cost.unreliability <> bits mi.Cost.unreliability
          || bits mf.Cost.delay <> bits mi.Cost.delay
          || bits mf.Cost.energy <> bits mi.Cost.energy
          || bits mf.Cost.area <> bits mi.Cost.area
        then fail "optimized metrics differ";
        for id = 0 to Circuit.node_count c - 1 do
          if not (Circuit.is_input c id) then
            if
              not
                (Cell_params.equal
                   (Assignment.get rf.Opt.optimized id)
                   (Assignment.get ri.Opt.optimized id))
            then fail "optimized assignments differ at gate %d" id
        done;
        let checksum =
          Assignment.fold_gates rf.Opt.optimized
            ~init:mf.Cost.unreliability
            ~f:(fun acc _ (p : Cell_params.t) ->
              acc +. p.size +. p.length +. p.vdd +. p.vth)
        in
        let speedup = full_s /. Float.max 1e-9 incr_s in
        Printf.printf
          "  %-8s full %8.3f s   incremental %8.3f s   speedup %5.2fx   \
           (evals %d, reduction %.1f%%)\n%!"
          name full_s incr_s speedup rf.Opt.evals
          (100. *. Opt.unreliability_reduction rf);
        Ser_util.Json.(
          Obj
            [
              ("name", Str name);
              ("full_s", Num full_s);
              ("incr_s", Num incr_s);
              ("speedup", Num speedup);
              ("checksum", Num checksum);
            ]))
      cases
  in
  (* tiered greedy-menu evaluation: serpp prefilter (top-6 of every
     menu measured exactly) against exact menus, same seed and config
     otherwise. The prefilter must cut exact evaluations at least 2x
     on the big case while landing within 5% of the non-tiered final
     cost — the documented tolerance for --eval-tier serpp. *)
  section "SERTOPT greedy-menu tiering: exact menus vs serpp prefilter";
  let tiered =
    let name, vectors, max_evals, greedy_gates =
      if smoke then ("c432", 300, 4, 4) else ("c2670", 400, 8, 24)
    in
    let c = Ser_circuits.Iscas.load name in
    let lib = Ser_cell.Library.create () in
    let baseline = Assignment.uniform lib c in
    let aserta = { Analysis.default_config with Analysis.vectors } in
    let masking = Analysis.compute_masking aserta c in
    let config tier =
      {
        Opt.default_config with
        Opt.aserta;
        eval_mode = Opt.Incremental;
        tier;
        max_evals;
        greedy_gates;
        greedy_passes = 1;
        annealing_steps = 0;
      }
    in
    let saved_counter () =
      match Ser_obs.Obs.Metrics.find_counter "sertopt.exact_evals_saved" with
      | Some ctr -> Ser_obs.Obs.Metrics.value ctr
      | None -> 0
    in
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          Printf.eprintf "FATAL: %s tiering: %s\n" name msg;
          exit 1)
        fmt
    in
    let run tier () = Opt.optimize ~config:(config tier) ~masking lib baseline in
    let re, exact_s = time (run Opt.Exact) in
    let saved0 = saved_counter () in
    let rt, tiered_s = time (run (Opt.Serpp_prefilter 6)) in
    let exact_saved = saved_counter () - saved0 in
    let eval_ratio = float_of_int re.Opt.evals /. float_of_int (max 1 rt.Opt.evals) in
    let cost_of (r : Opt.result) =
      let d = Opt.default_config in
      Cost.eval ~weights:d.Opt.weights ~delay_slack:d.Opt.delay_slack
        ~baseline:re.Opt.baseline_metrics r.Opt.optimized_metrics
    in
    let cost_exact = cost_of re and cost_tiered = cost_of rt in
    let cost_rel_delta =
      (cost_tiered -. cost_exact) /. Float.max 1e-9 (Float.abs cost_exact)
    in
    if not smoke && eval_ratio < 2. then
      fail "exact-eval reduction %.2fx below the 2x floor" eval_ratio;
    if Float.abs cost_rel_delta > 0.05 then
      fail "tiered final cost drifts %.1f%% from exact (tolerance 5%%)"
        (100. *. cost_rel_delta);
    Printf.printf
      "  %-8s exact %4d evals %8.3f s   tiered %4d evals %8.3f s   \
       %.2fx fewer exact evals (saved %d, cost drift %+.2f%%)\n%!"
      name re.Opt.evals exact_s rt.Opt.evals tiered_s eval_ratio exact_saved
      (100. *. cost_rel_delta);
    Ser_util.Json.(
      Obj
        [
          ("name", Str name);
          ("tier_k", int 6);
          ("exact_evals", int re.Opt.evals);
          ("tiered_evals", int rt.Opt.evals);
          ("eval_ratio", Num eval_ratio);
          ("exact_evals_saved", int exact_saved);
          ("exact_s", Num exact_s);
          ("tiered_s", Num tiered_s);
          ("u_exact", Num re.Opt.optimized_metrics.Cost.unreliability);
          ("u_tiered", Num rt.Opt.optimized_metrics.Cost.unreliability);
          ("cost_rel_delta", Num cost_rel_delta);
        ])
  in
  let doc =
    Ser_util.Json.(
      Obj
        [
          ("jobs", int jobs);
          ("recommended_domains", int (Ser_par.Par.recommended_jobs ()));
          ("cases", List rows);
          ("tiered", tiered);
          ("pool", Ser_par.Par.stats_json ());
          ("metrics", Ser_obs.Obs.Metrics.snapshot ());
        ])
  in
  let file = if smoke then "BENCH_sertopt_smoke.json" else "BENCH_sertopt.json" in
  let oc = open_out file in
  output_string oc (Ser_util.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote %s (jobs=%d)\n" file jobs

let all () =
  fig1 ();
  fig2 ();
  fig3 ();
  table1 ();
  runtime ();
  ablations ();
  alternatives ();
  variation ();
  ser_rate ();
  pipeline ();
  par_bench ();
  micro ()

(* ------------------------------------------------------------------ *)
(* Batch supervisor (lib/jobs): isolation overhead and throughput      *)
(* ------------------------------------------------------------------ *)

let jobs_bench () =
  section "Batch supervisor (lib/jobs): process isolation overhead";
  let module Supervisor = Ser_jobs.Supervisor in
  let module Journal = Ser_jobs.Journal in
  let n = 24 in
  let jobs =
    List.init n (fun i ->
        Supervisor.job
          ~id:(Printf.sprintf "j%03d" i)
          [|
            "/bin/sh"; "-c"; Printf.sprintf {|printf '{"ok":true,"result":%d}'|} i;
          |])
  in
  let run_with parallel =
    let path = Filename.temp_file "bench_jobs" ".journal" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let cfg =
          {
            Supervisor.default_config with
            Supervisor.parallel;
            timeout_s = 30.;
            retries = 0;
          }
        in
        match Journal.create path with
        | Error d ->
          Printf.eprintf "FATAL: %s\n" (Ser_util.Diag.to_string d);
          exit 1
        | Ok j ->
          Fun.protect
            ~finally:(fun () -> Journal.close j)
            (fun () ->
              let t0 = Unix.gettimeofday () in
              match Supervisor.run cfg ~journal:j jobs with
              | Error d ->
                Printf.eprintf "FATAL: %s\n" (Ser_util.Diag.to_string d);
                exit 1
              | Ok s ->
                let dt = Unix.gettimeofday () -. t0 in
                if s.Supervisor.ok <> n then begin
                  Printf.eprintf "FATAL: lost jobs (ok=%d of %d)\n"
                    s.Supervisor.ok n;
                  exit 1
                end;
                dt))
  in
  let width = max 2 (Ser_par.Par.jobs ()) in
  let widths = List.sort_uniq compare [ 1; 2; width ] in
  let rows =
    List.map
      (fun parallel ->
        let dt = run_with parallel in
        let throughput = float_of_int n /. Float.max 1e-9 dt in
        Printf.printf "  parallel=%-2d  %6.3f s   %6.1f jobs/s\n%!" parallel dt
          throughput;
        Ser_util.Json.(
          Obj
            [
              ("parallel", int parallel);
              ("seconds", Num dt);
              ("throughput_jobs_per_s", Num throughput);
            ]))
      widths
  in
  let doc =
    Ser_util.Json.(
      Obj [ ("jobs_per_batch", int n); ("journal", Str "fsync-per-record");
            ("widths", List rows);
            ("metrics", Ser_obs.Obs.Metrics.snapshot ()) ])
  in
  let oc = open_out "BENCH_jobs.json" in
  output_string oc (Ser_util.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote BENCH_jobs.json\n"

(* ------------------------------------------------------------------ *)
(* Sharded sweeps (lib/jobs): merge cost and single-host equivalence   *)
(* ------------------------------------------------------------------ *)

let shard_bench () =
  section "Sharded sweeps (lib/jobs): split/merge vs single-host";
  let module Supervisor = Ser_jobs.Supervisor in
  let module Journal = Ser_jobs.Journal in
  let module Shard = Ser_jobs.Shard in
  let module Merge = Ser_jobs.Merge in
  let n = 48 in
  let jobs =
    List.init n (fun i ->
        Supervisor.job
          ~id:(Printf.sprintf "j%03d" i)
          [|
            "/bin/sh"; "-c"; Printf.sprintf {|printf '{"ok":true,"result":%d}'|} i;
          |])
  in
  let ids = List.map (fun (j : Supervisor.job) -> j.Supervisor.id) jobs in
  let cfg =
    {
      Supervisor.default_config with
      Supervisor.parallel = max 2 (Ser_par.Par.jobs ());
      timeout_s = 30.;
      retries = 0;
    }
  in
  let tmp suffix =
    let p = Filename.temp_file "bench_shard" suffix in
    at_exit (fun () -> try Sys.remove p with Sys_error _ -> ());
    p
  in
  let run ?shard path job_list =
    match Journal.create path with
    | Error d ->
      Printf.eprintf "FATAL: %s\n" (Ser_util.Diag.to_string d);
      exit 1
    | Ok j ->
      Fun.protect
        ~finally:(fun () -> Journal.close j)
        (fun () ->
          match Supervisor.run ?shard cfg ~journal:j job_list with
          | Error d ->
            Printf.eprintf "FATAL: %s\n" (Ser_util.Diag.to_string d);
            exit 1
          | Ok _ -> ())
  in
  let doc_of_journal path =
    match Journal.replay path with
    | Error d ->
      Printf.eprintf "FATAL: %s\n" (Ser_util.Diag.to_string d);
      exit 1
    | Ok st ->
      Ser_util.Json.to_string ~indent:false (Journal.final_results_json st)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let single = tmp ".journal" in
  let (), single_s = time (fun () -> run single jobs) in
  let expected = doc_of_journal single in
  let rows =
    List.map
      (fun shards ->
        let paths = List.init shards (fun _ -> tmp ".journal") in
        let (), sweep_s =
          time (fun () ->
              List.iteri
                (fun i path ->
                  let mine =
                    Shard.select { Shard.index = i; count = shards }
                      ~id:(fun (j : Supervisor.job) -> j.Supervisor.id)
                      jobs
                  in
                  run ~shard:(i, shards) path mine)
                paths)
        in
        let merged, merge_s =
          time (fun () ->
              match Merge.load paths with
              | Error d ->
                Printf.eprintf "FATAL: %s\n" (Ser_util.Diag.to_string d);
                exit 1
              | Ok sources ->
                let r =
                  Merge.merge
                    ~expect:{ Merge.e_jobs = ids; e_shards = shards }
                    sources
                in
                (match Merge.integrity_error r with
                | Some d ->
                  Printf.eprintf "FATAL: %s\n" (Ser_util.Diag.to_string d);
                  exit 1
                | None -> ());
                if r.Merge.degraded then begin
                  Printf.eprintf "FATAL: merge degraded at %d shards\n" shards;
                  exit 1
                end;
                Ser_util.Json.to_string ~indent:false (Merge.results_json r))
        in
        if not (String.equal expected merged) then begin
          Printf.eprintf
            "FATAL: merged document differs from single-host at %d shards\n"
            shards;
          exit 1
        end;
        Printf.printf
          "  shards=%-2d  sweep %6.3f s   merge %8.5f s   (single-host %6.3f \
           s, bit-identical)\n%!"
          shards sweep_s merge_s single_s;
        Ser_util.Json.(
          Obj
            [
              ("shards", int shards);
              ("sweep_s", Num sweep_s);
              ("merge_s", Num merge_s);
              ("bit_identical", Bool true);
            ]))
      [ 2; 4; 8 ]
  in
  let doc =
    Ser_util.Json.(
      Obj
        [
          ("jobs_per_batch", int n);
          ("single_host_s", Num single_s);
          ("sweeps", List rows);
          ("metrics", Ser_obs.Obs.Metrics.snapshot ());
        ])
  in
  let oc = open_out "BENCH_shard.json" in
  output_string oc (Ser_util.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote BENCH_shard.json\n"

(* ------------------------------------------------------------------ *)
(* Serve daemon (lib/serve): cold path vs content-addressed cache hit  *)
(* ------------------------------------------------------------------ *)

let serve_bench () =
  section "Serve daemon (lib/serve): cold vs cache-hit latency";
  let module Server = Ser_serve.Server in
  let module Client = Ser_serve.Client in
  let module Wire = Ser_serve.Wire in
  let module Request = Ser_cli.Request in
  let dir = Filename.temp_file "bench_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "d.sock" in
      let cfg =
        { (Server.default ~socket) with Server.spool_dir = Some dir }
      in
      let pid =
        match Unix.fork () with
        | 0 ->
          (try
             Ser_par.Par.set_jobs 1;
             let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
             Unix.dup2 devnull Unix.stdout;
             Unix.dup2 devnull Unix.stderr;
             Unix.close devnull;
             ignore (Server.run cfg)
           with _ -> ());
          Unix._exit 0
        | pid -> pid
      in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () ->
          let addr = Server.Unix_sock socket in
          if not (Client.wait_ready addr) then begin
            Printf.eprintf "FATAL: serve daemon did not come up\n";
            exit 1
          end;
          let circuit = "c432" and vectors = 1000 in
          let req =
            Request.to_json
              (Request.make ~vectors Request.Analyze (Request.Spec circuit))
          in
          let timed_call expect_hit =
            let t0 = Unix.gettimeofday () in
            match Client.call addr req with
            | Error d ->
              Printf.eprintf "FATAL: %s\n" (Ser_util.Diag.to_string d);
              exit 1
            | Ok r -> (
              match r.Wire.r_status with
              | Wire.Rejected (k, msg, _) ->
                Printf.eprintf "FATAL: rejected (%s): %s\n"
                  (Wire.reject_to_string k) msg;
                exit 1
              | Wire.Ok_payload _ ->
                if r.Wire.r_cache_hit <> expect_hit then begin
                  Printf.eprintf "FATAL: cache_hit=%b, expected %b\n"
                    r.Wire.r_cache_hit expect_hit;
                  exit 1
                end;
                Unix.gettimeofday () -. t0)
          in
          let cold_s = timed_call false in
          let n = 20 in
          let hits =
            Array.init n (fun _ -> timed_call true)
          in
          Array.sort compare hits;
          let hit_median_s = hits.(n / 2) in
          let hit_max_s = hits.(n - 1) in
          let speedup = cold_s /. Float.max 1e-9 hit_median_s in
          Printf.printf
            "  %s, %d vectors: cold %.4f s, hit median %.6f s (max %.6f s), \
             %.0fx\n%!"
            circuit vectors cold_s hit_median_s hit_max_s speedup;
          let doc =
            Ser_util.Json.(
              Obj
                [
                  ("circuit", Str circuit);
                  ("vectors", int vectors);
                  ("hit_samples", int n);
                  ("cold_s", Num cold_s);
                  ("hit_median_s", Num hit_median_s);
                  ("hit_max_s", Num hit_max_s);
                  ("speedup", Num speedup);
                ])
          in
          let oc = open_out "BENCH_serve.json" in
          output_string oc (Ser_util.Json.to_string doc);
          output_string oc "\n";
          close_out oc;
          Printf.printf "  wrote BENCH_serve.json\n"))

let odc_bench () =
  section "ODC (lib/odc): discovery, prune speedup, optimizer seeding";
  let module Odc = Ser_odc.Odc in
  let module Analysis = Aserta.Analysis in
  let module Circuit = Ser_netlist.Circuit in
  let fail d = failwith (Ser_util.Diag.to_string d) in
  (* TMR gives provable don't-cares with small supports: each replica
     gate is masked by its voter, exhaustively, over <= 5 inputs *)
  let c = Ser_harden.Transforms.tmr (Ser_circuits.Iscas.load "c17") in
  let report = Odc.analyze ~config:{ Odc.default with Odc.vectors = 2000 } c in
  let proven = Odc.n_proven report in
  Printf.printf "  %s: %d sites -> %d proven masked, %d observed, %d sampled\n"
    c.Circuit.name
    (Array.length report.Odc.sites)
    proven (Odc.n_observed report) (Odc.n_sampled report);
  if proven = 0 then begin
    Printf.eprintf "FATAL: TMR circuit has no provably-masked gates\n";
    exit 1
  end;
  let lib = Ser_cell.Library.create () in
  let asg = Sertopt.Optimizer.size_for_speed lib c in
  let config = { Analysis.default_config with Analysis.vectors = 60_000 } in
  let time f =
    let t0 = Ser_util.Mono.now () in
    let r = f () in
    (r, Ser_util.Mono.now () -. t0)
  in
  let a_plain, t_plain = time (fun () -> Analysis.run ~config lib asg) in
  let prune =
    match Odc.prune_set c report with Ok p -> p | Error d -> fail d
  in
  let a_pruned, t_pruned = time (fun () -> Analysis.run ~config ~prune lib asg) in
  (* the whole point of the prune: bit-identical, only faster *)
  let identical =
    Int64.bits_of_float a_plain.Analysis.total
      = Int64.bits_of_float a_pruned.Analysis.total
    && Array.for_all2
         (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
         a_plain.Analysis.unreliability a_pruned.Analysis.unreliability
  in
  if not identical then begin
    Printf.eprintf "FATAL: pruned analysis is not bit-identical\n";
    exit 1
  end;
  let speedup = t_plain /. Float.max 1e-9 t_pruned in
  Printf.printf
    "  analysis (%d vectors): unpruned %.3f s, pruned %.3f s (%.2fx, \
     bit-identical)\n"
    config.Analysis.vectors t_plain t_pruned speedup;
  (* optimizer seeding: start from a mid-size baseline so low-obs gates
     actually have smaller variants to fall to *)
  let obs = match Odc.obs_array c report with Ok o -> o | Error d -> fail d in
  let mid = Ser_sta.Assignment.uniform lib c in
  for id = 0 to Circuit.node_count c - 1 do
    if not (Circuit.is_input c id) then begin
      let nd = Circuit.node c id in
      let menu =
        Ser_cell.Library.variants lib nd.Circuit.kind
          (Array.length nd.Circuit.fanin)
        |> List.sort (fun a b ->
               compare a.Ser_device.Cell_params.size b.Ser_device.Cell_params.size)
      in
      match List.nth_opt menu (List.length menu / 2) with
      | Some p -> Ser_sta.Assignment.set mid id p
      | None -> ()
    end
  done;
  let v name =
    match Ser_obs.Obs.Metrics.find_counter name with
    | Some ctr -> Ser_obs.Obs.Metrics.value ctr
    | None -> 0
  in
  let moves0 = v "sertopt.odc_moves" and acc0 = v "sertopt.odc_accepts" in
  let cfg =
    {
      Sertopt.Optimizer.default_config with
      Sertopt.Optimizer.aserta =
        { Analysis.default_config with Analysis.vectors = 1000 };
      max_evals = 10;
      greedy_passes = 0;
      annealing_steps = 0;
      replay_guard = 0;
      odc_obs = Some obs;
      odc_threshold = 0.05;
    }
  in
  let r = Sertopt.Optimizer.optimize ~config:cfg lib mid in
  let moves = v "sertopt.odc_moves" - moves0 in
  let accepts = v "sertopt.odc_accepts" - acc0 in
  Printf.printf
    "  odc-seeded downsizing: %d candidates proposed, %d accepted (U %.1f -> \
     %.1f)\n"
    moves accepts
    r.Sertopt.Optimizer.baseline_metrics.Sertopt.Cost.unreliability
    r.Sertopt.Optimizer.optimized_metrics.Sertopt.Cost.unreliability;
  let doc =
    Ser_util.Json.(
      Obj
        [
          ("circuit", Str c.Circuit.name);
          ("sites", int (Array.length report.Odc.sites));
          ("proven_masked", int proven);
          ("observed", int (Odc.n_observed report));
          ("sampled_unobserved", int (Odc.n_sampled report));
          ("vectors", int config.Analysis.vectors);
          ("unpruned_s", Num t_plain);
          ("pruned_s", Num t_pruned);
          ("speedup", Num speedup);
          ("bit_identical", Bool identical);
          ("odc_moves", int moves);
          ("odc_accepts", int accepts);
        ])
  in
  let oc = open_out "BENCH_odc.json" in
  output_string oc (Ser_util.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote BENCH_odc.json\n"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* a leading "-j N" pins the pool width for every target *)
  let args =
    match args with
    | "-j" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 0 -> Ser_par.Par.set_jobs j
      | _ ->
        Printf.eprintf "bad -j value %S (want an integer >= 0)\n" n;
        exit 2);
      rest
    | _ -> args
  in
  match args with
  | [] | [ "all" ] -> all ()
  | [ "fig1" ] -> fig1 ()
  | [ "fig2" ] -> fig2 ()
  | [ "fig3" ] -> fig3 ~vectors:10 ()
  | [ "table1" ] -> table1 ()
  | [ "table1-golden" ] -> table1 ~with_golden:true ()
  | [ "table1-full" ] -> table1 ~effort:Ser_repro.Table1.Full ()
  | "table1" :: names -> table1 ~only:names ()
  | [ "runtime" ] -> runtime ()
  | [ "ablations" ] -> ablations ()
  | [ "ablation-pi" ] -> print_string (Ser_repro.Ablation.pi_split ())
  | [ "ablation-samples" ] -> print_string (Ser_repro.Ablation.sample_count ())
  | [ "ablation-opt" ] -> print_string (Ser_repro.Ablation.optimizer_variants ())
  | [ "ablation-vectors" ] ->
    print_string (Ser_repro.Ablation.vector_convergence ())
  | [ "ablation-charge" ] -> print_string (Ser_repro.Ablation.charge_sweep ())
  | [ "ablation-masking" ] -> print_string (Ser_repro.Ablation.masking_backend ())
  | [ "ablation-model" ] -> print_string (Ser_repro.Ablation.glitch_model ())
  | [ "alternatives" ] -> alternatives ()
  | [ "variation" ] -> variation ()
  | [ "ser-rate" ] -> ser_rate ()
  | [ "pipeline" ] -> pipeline ()
  | [ "micro" ] -> micro ()
  | [ "par" ] -> par_bench ()
  | [ "sertopt" ] -> sertopt_bench ()
  | [ "sertopt-smoke" ] -> sertopt_bench ~smoke:true ()
  | [ "jobs" ] -> jobs_bench ()
  | [ "shard" ] -> shard_bench ()
  | [ "serve" ] -> serve_bench ()
  | [ "odc" ] -> odc_bench ()
  | other ->
    Printf.eprintf
      "unknown bench target %s\n\
       usage: main.exe [-j N] TARGET\n\
       targets: all fig1 fig2 fig3 table1 [circuits...] table1-golden \
       table1-full runtime ablations \
       ablation-{pi,samples,opt,vectors,charge,masking,model} \
       alternatives variation ser-rate pipeline micro par sertopt \
       sertopt-smoke jobs shard serve odc\n"
      (String.concat " " other);
    exit 2
